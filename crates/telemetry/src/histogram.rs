//! Fixed-bucket log2 histograms.
//!
//! 65 buckets cover the whole `u64` domain with zero configuration: bucket 0
//! holds the value 0, bucket `i` (1..=64) holds `[2^(i-1), 2^i)`. Recording
//! is a `leading_zeros` plus one counter increment, cheap enough for the
//! per-packet path (probe lengths, queue depths).

use crate::cell::TelemetryCell;

pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise `64 - leading_zeros`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive-exclusive `[lo, hi)` value range covered by a bucket
/// (`hi == u64::MAX` for the last, which covers up to `2^64 - 1`).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 1),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), 1 << i),
    }
}

/// Histogram over generic cells; embed [`LogHistogram`] instead when the
/// owner is single-threaded and `&mut self` is available.
#[derive(Debug)]
pub struct HistogramCore<C: TelemetryCell> {
    buckets: [C; BUCKETS],
    count: C,
    sum: C,
    max: C,
}

impl<C: TelemetryCell> Default for HistogramCore<C> {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| C::default()),
            count: C::default(),
            sum: C::default(),
            max: C::default(),
        }
    }
}

impl<C: TelemetryCell> HistogramCore<C> {
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].add(1);
        self.count.add(1);
        self.sum.add(value);
        self.max.raise_to(value);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, cell) in buckets.iter_mut().zip(&self.buckets) {
            *slot = cell.get();
        }
        HistogramSnapshot {
            buckets,
            count: self.count.get(),
            sum: self.sum.get(),
            max: self.max.get(),
        }
    }
}

/// Plain-`u64` log2 histogram for single-threaded owners.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot { buckets: self.buckets, count: self.count, sum: self.sum, max: self.max }
    }

    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Immutable point-in-time view of a histogram; the unit carried by
/// [`crate::MetricValue::Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bucket bound at or above quantile `q` in `[0, 1]`; a coarse
    /// (factor-of-two) estimate, as is inherent to log2 buckets.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Bucket-wise sum with `other` (shard merging).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise saturating subtraction (`self` since `earlier`).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, (a, b)) in buckets.iter_mut().zip(self.buckets.iter().zip(&earlier.buckets)) {
            *slot = a.saturating_sub(*b);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Non-empty `(lo, hi_inclusive, count)` rows, low to high.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let (lo, hi) = bucket_bounds(i);
            (lo, if i == 64 { u64::MAX } else { hi - 1 }, c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::{bucket_index, LogHistogram};

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn observe_merge_delta_roundtrip() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 1, 3, 8, 100] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 113);
        assert_eq!(snap.max, 100);
        assert!((snap.mean() - 113.0 / 6.0).abs() < 1e-12);

        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.count, 12);
        assert_eq!(merged.sum, 226);

        let diff = merged.delta(&snap);
        assert_eq!(diff.count, snap.count);
        assert_eq!(diff.buckets, snap.buckets);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(1000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1);
        assert_eq!(s.quantile(1.0), 1000, "clamped to observed max");
        assert_eq!(s.quantile(0.0), 1, "rank floors at the first sample");
    }
}
