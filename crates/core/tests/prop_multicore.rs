//! Property tests for the batched multi-core ingest pipeline: packet
//! accounting is exact for *any* batch size, queue capacity, worker count
//! and trace length — including the empty trace and traces shorter than
//! one batch, where everything rides the end-of-stream flush.

use instameasure_core::multicore::{run_multicore, BackpressurePolicy, MultiCoreConfig};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use proptest::prelude::*;

/// A deterministic synthetic trace: `flows` distinct keys round-robined
/// over `len` packets (routing across workers varies with the salt).
fn trace(len: usize, flows: u32, salt: u32) -> Vec<PacketRecord> {
    (0..len as u64)
        .map(|t| {
            let i = (t as u32 % flows.max(1)).wrapping_mul(2654435761).wrapping_add(salt);
            let key = FlowKey::new(
                i.to_be_bytes(),
                salt.to_be_bytes(),
                (i % 60000) as u16,
                443,
                Protocol::Udp,
            );
            PacketRecord::new(key, 64 + (t % 1400) as u16, t)
        })
        .collect()
}

fn config(
    workers: usize,
    queue_capacity: usize,
    batch_size: usize,
    backpressure: BackpressurePolicy,
) -> MultiCoreConfig {
    MultiCoreConfig::builder()
        .workers(workers)
        .queue_capacity(queue_capacity)
        .batch_size(batch_size)
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .backpressure(backpressure)
        .build()
        .expect("generated parameters are within the builder's bounds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn block_mode_loses_no_packets(
        batch_size in 1usize..=4096,
        len in 0usize..=3000,
        workers in 1usize..=4,
        queue_capacity in 1usize..=512,
        flows in 1u32..=200,
        salt in any::<u32>(),
    ) {
        let records = trace(len, flows, salt);
        let (_, report) =
            run_multicore(&records, &config(workers, queue_capacity, batch_size, BackpressurePolicy::Block));
        prop_assert_eq!(report.dropped, 0);
        prop_assert_eq!(report.packets, len as u64);
        prop_assert_eq!(report.per_worker_packets.iter().sum::<u64>(), len as u64);
        // The workers' live telemetry counters agree packet-for-packet.
        let mut live = 0u64;
        for w in 0..workers {
            let n = report
                .telemetry
                .counter(&format!("multicore.worker{w}.packets"))
                .expect("worker counter exists");
            prop_assert_eq!(n, report.per_worker_packets[w]);
            live += n;
        }
        prop_assert_eq!(live, len as u64);
        // Every shipped packet sits in exactly one occupancy-histogram batch.
        let occ = report.telemetry.histogram("ingest.batch_occupancy").unwrap();
        prop_assert_eq!(occ.sum, len as u64);
        prop_assert_eq!(occ.count, report.batches_sent);
    }

    #[test]
    fn drop_mode_conserves_processed_plus_dropped(
        batch_size in 1usize..=4096,
        len in 0usize..=3000,
        workers in 1usize..=4,
        queue_capacity in 1usize..=512,
        flows in 1u32..=200,
        salt in any::<u32>(),
    ) {
        let records = trace(len, flows, salt);
        let (_, report) =
            run_multicore(&records, &config(workers, queue_capacity, batch_size, BackpressurePolicy::Drop));
        prop_assert_eq!(report.packets + report.dropped, len as u64);
        prop_assert_eq!(report.per_worker_packets.iter().sum::<u64>(), report.packets);
        prop_assert_eq!(report.per_worker_dropped.iter().sum::<u64>(), report.dropped);
        for w in 0..workers {
            // Per-worker accounting reconciles with the live counters on
            // both sides of the split.
            prop_assert_eq!(
                report.telemetry.counter(&format!("multicore.worker{w}.packets")),
                Some(report.per_worker_packets[w])
            );
            prop_assert_eq!(
                report.telemetry.counter(&format!("ingest.worker{w}.dropped_pkts")),
                Some(report.per_worker_dropped[w])
            );
        }
        prop_assert_eq!(report.telemetry.counter("ingest.dropped_pkts"), Some(report.dropped));
    }

    #[test]
    fn batched_hot_path_is_bit_identical_to_scalar(
        batch_size in 1usize..=600,
        len in 0usize..=3000,
        flows in 1u32..=200,
        salt in any::<u32>(),
    ) {
        let records = trace(len, flows, salt);
        let mut scalar = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for r in &records {
            scalar.process(r);
        }
        let mut batched = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for chunk in records.chunks(batch_size) {
            batched.process_batch(chunk);
        }
        prop_assert_eq!(batched.filter_stats(), scalar.filter_stats());
        prop_assert_eq!(batched.wsaf().len(), scalar.wsaf().len());
        for r in &records {
            let (bp, bb) = batched.estimate(&r.key);
            let (sp, sb) = scalar.estimate(&r.key);
            prop_assert_eq!(bp.to_bits(), sp.to_bits(), "packets for {}", r.key);
            prop_assert_eq!(bb.to_bits(), sb.to_bits(), "bytes for {}", r.key);
        }
    }
}
