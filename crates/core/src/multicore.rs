//! The multi-core measurement system of paper Fig. 5.
//!
//! A *manager* thread ingests the packet stream and dispatches each packet
//! to one of `N` *worker* threads through bounded FIFO queues; the worker
//! index is the popcount of the source IP address modulo `N` (the paper's
//! balancing rule, which also guarantees all packets of a flow meet the
//! same worker). Each worker owns an exclusive [`InstaMeasure`] instance —
//! private FlowRegulator memory and a private WSAF shard — so workers never
//! contend on counter memory, exactly as the paper allocates "memory
//! blocks exclusively to each worker core".

use std::thread;
use std::time::Instant;

use crossbeam::channel;
use instameasure_packet::{FlowKey, PacketRecord};
use instameasure_sketch::RegulatorStats;
use instameasure_telemetry::{Instrumented, SharedRegistry, Snapshot};

use crate::{InstaMeasure, InstaMeasureConfig};

/// What the manager does when a worker's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block until the worker drains (lossless; offline replay mode).
    #[default]
    Block,
    /// Drop the packet and count it — how a real tap behaves when
    /// overrun (the paper's mirror port "starts to drop packets when
    /// port capacity is exceeded", §IV-B).
    Drop,
}

/// Configuration of the multi-core system.
#[derive(Debug, Clone, Copy)]
pub struct MultiCoreConfig {
    /// Number of worker threads (the paper evaluates 1–4).
    pub workers: usize,
    /// Capacity of each worker's FIFO packet queue.
    pub queue_capacity: usize,
    /// Per-worker measurement configuration (each worker gets its own
    /// sketch and WSAF shard of this size).
    pub per_worker: InstaMeasureConfig,
    /// Full-queue behaviour.
    pub backpressure: BackpressurePolicy,
}

impl Default for MultiCoreConfig {
    fn default() -> Self {
        MultiCoreConfig {
            workers: 4,
            queue_capacity: 4096,
            per_worker: InstaMeasureConfig::default(),
            backpressure: BackpressurePolicy::Block,
        }
    }
}

/// Routes a flow to its worker: popcount of the source address mod `N`
/// (paper §IV-C: "the number of 1 bits of source IP address is used to
/// determine which queue the packet goes into").
///
/// # Panics
///
/// Panics if `workers` is zero.
#[inline]
#[must_use]
pub fn worker_for(key: &FlowKey, workers: usize) -> usize {
    assert!(workers > 0, "need at least one worker");
    key.src_ip_u32().count_ones() as usize % workers
}

/// The merged view over all worker shards after a run.
#[derive(Debug)]
pub struct MultiCoreSystem {
    shards: Vec<InstaMeasure>,
}

impl MultiCoreSystem {
    /// Number of workers/shards.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Per-flow packet estimate (routed to the owning shard).
    #[must_use]
    pub fn estimate_packets(&self, key: &FlowKey) -> f64 {
        self.shards[worker_for(key, self.shards.len())].estimate_packets(key)
    }

    /// Per-flow byte estimate (routed to the owning shard).
    #[must_use]
    pub fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        self.shards[worker_for(key, self.shards.len())].estimate_bytes(key)
    }

    /// Read access to one shard.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn shard(&self, idx: usize) -> &InstaMeasure {
        &self.shards[idx]
    }

    /// Regulator stats for each worker.
    #[must_use]
    pub fn regulator_stats(&self) -> Vec<RegulatorStats> {
        self.shards.iter().map(InstaMeasure::regulator_stats).collect()
    }

    /// Telemetry of one shard (its `regulator.*` + `wsaf.*` metrics).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn shard_telemetry(&self, idx: usize) -> Snapshot {
        self.shards[idx].telemetry()
    }

    /// Global Top-K by packets, merged across shards.
    #[must_use]
    pub fn top_k_by_packets(&self, k: usize) -> Vec<(FlowKey, f64)> {
        let mut all: Vec<(FlowKey, f64)> = self
            .shards
            .iter()
            .flat_map(|s| s.wsaf().top_k_by_packets(k))
            .map(|e| (e.key, e.packets))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1));
        all.truncate(k);
        all
    }
}

impl Instrumented for MultiCoreSystem {
    /// The shards' snapshots merged into one aggregate view: `regulator.*`
    /// and `wsaf.*` counters sum across workers, histograms sum bucket-wise,
    /// gauges keep the worst shard.
    fn telemetry(&self) -> Snapshot {
        let mut merged = Snapshot::new();
        for shard in &self.shards {
            merged.merge(&shard.telemetry());
        }
        merged
    }
}

/// Timing and load metrics of one multi-core run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock processing time in nanoseconds (dispatch + drain).
    pub wall_nanos: u64,
    /// Packets processed.
    pub packets: u64,
    /// End-to-end throughput in packets/second of wall time.
    pub throughput_pps: f64,
    /// Packets handled by each worker (dispatch balance).
    pub per_worker_packets: Vec<u64>,
    /// Queue depth samples taken by the manager while dispatching (one
    /// per `sample_every` packets), as the paper plots in Fig. 12(c):
    /// `(packet timestamp, total queued packets)`.
    pub queue_depth_samples: Vec<(u64, usize)>,
    /// Sum of busy-loop work across workers in nanoseconds (CPU-work
    /// proxy; meaningful even on a host with fewer physical cores than
    /// workers).
    pub worker_busy_nanos: Vec<u64>,
    /// Packets dropped at full queues (always 0 under
    /// [`BackpressurePolicy::Block`]).
    pub dropped: u64,
    /// Run-level telemetry collected live through a [`SharedRegistry`]:
    /// `multicore.worker{w}.packets` and `.busy_nanos` per worker,
    /// `multicore.packets`/`dropped` counters, the `multicore.queue_depth`
    /// histogram sampled by the manager, and a `multicore.throughput_pps`
    /// gauge.
    pub telemetry: Snapshot,
}

impl RunReport {
    /// Dispatch imbalance: max over min per-worker packet share (1.0 is
    /// perfectly balanced).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let max = self.per_worker_packets.iter().copied().max().unwrap_or(0);
        let min = self.per_worker_packets.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// Runs the full manager/worker pipeline over a pre-loaded packet stream
/// (the paper pre-loads the CAIDA trace into memory for its speed tests,
/// §V-B) and returns the merged measurement plus the run report.
///
/// # Panics
///
/// Panics if `cfg.workers` is zero or a worker thread panics.
#[must_use]
pub fn run_multicore(
    records: &[PacketRecord],
    cfg: &MultiCoreConfig,
) -> (MultiCoreSystem, RunReport) {
    assert!(cfg.workers > 0, "need at least one worker");
    let sample_every = 8192;
    let registry = SharedRegistry::new();
    let queue_depth = registry.histogram("multicore.queue_depth");
    let dropped_ctr = registry.counter("multicore.dropped");

    let mut senders = Vec::with_capacity(cfg.workers);
    let mut receivers = Vec::with_capacity(cfg.workers);
    for _ in 0..cfg.workers {
        let (tx, rx) = channel::bounded::<PacketRecord>(cfg.queue_capacity);
        senders.push(tx);
        receivers.push(rx);
    }

    let start = Instant::now();
    let mut per_worker_packets = vec![0u64; cfg.workers];
    let mut queue_depth_samples = Vec::new();

    let (shards, worker_busy_nanos, dropped) = thread::scope(|scope| {
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(w, rx)| {
                let per_worker = cfg.per_worker;
                let packets_ctr = registry.counter(&format!("multicore.worker{w}.packets"));
                let busy_ctr = registry.counter(&format!("multicore.worker{w}.busy_nanos"));
                scope.spawn(move || {
                    let mut im = InstaMeasure::new(per_worker);
                    let busy_start = Instant::now();
                    while let Ok(pkt) = rx.recv() {
                        im.process(&pkt);
                        packets_ctr.inc();
                    }
                    let nanos = busy_start.elapsed().as_nanos() as u64;
                    busy_ctr.add(nanos);
                    (im, nanos)
                })
            })
            .collect();

        // Manager loop: dispatch by popcount(src) % N.
        let mut dropped = 0u64;
        for (i, pkt) in records.iter().enumerate() {
            let w = worker_for(&pkt.key, cfg.workers);
            match cfg.backpressure {
                BackpressurePolicy::Block => {
                    senders[w].send(*pkt).expect("worker alive while manager sends");
                    per_worker_packets[w] += 1;
                }
                BackpressurePolicy::Drop => match senders[w].try_send(*pkt) {
                    Ok(()) => per_worker_packets[w] += 1,
                    Err(channel::TrySendError::Full(_)) => {
                        dropped += 1;
                        dropped_ctr.inc();
                    }
                    Err(channel::TrySendError::Disconnected(_)) => {
                        unreachable!("worker alive while manager sends")
                    }
                },
            }
            if i % sample_every == 0 {
                let depth: usize = senders.iter().map(channel::Sender::len).sum();
                queue_depth.observe(depth as u64);
                queue_depth_samples.push((pkt.ts_nanos, depth));
            }
        }
        drop(senders); // close queues; workers drain and exit

        let mut shards = Vec::with_capacity(cfg.workers);
        let mut busy = Vec::with_capacity(cfg.workers);
        for h in handles {
            let (im, nanos) = h.join().expect("worker thread must not panic");
            shards.push(im);
            busy.push(nanos);
        }
        (shards, busy, dropped)
    });

    let wall_nanos = start.elapsed().as_nanos() as u64;
    let packets = records.len() as u64 - dropped;
    let throughput_pps =
        if wall_nanos == 0 { 0.0 } else { packets as f64 * 1e9 / wall_nanos as f64 };
    registry.counter("multicore.packets").add(packets);
    registry.gauge("multicore.throughput_pps").set(throughput_pps);
    let report = RunReport {
        wall_nanos,
        packets,
        throughput_pps,
        per_worker_packets,
        queue_depth_samples,
        worker_busy_nanos,
        dropped,
        telemetry: registry.snapshot(),
    };
    (MultiCoreSystem { shards }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [5, 5, 5, 5], 1000, 80, Protocol::Tcp)
    }

    fn cfg(workers: usize) -> MultiCoreConfig {
        MultiCoreConfig {
            workers,
            queue_capacity: 1024,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
            backpressure: BackpressurePolicy::Block,
        }
    }

    #[test]
    fn dispatch_is_deterministic_and_in_range() {
        for i in 0..1000 {
            let w = worker_for(&key(i), 4);
            assert!(w < 4);
            assert_eq!(w, worker_for(&key(i), 4));
        }
    }

    #[test]
    fn all_packets_of_a_flow_meet_one_worker() {
        let records: Vec<PacketRecord> =
            (0..1000u64).map(|t| PacketRecord::new(key(7), 100, t)).collect();
        let (_, report) = run_multicore(&records, &cfg(4));
        let nonzero = report.per_worker_packets.iter().filter(|&&c| c > 0).count();
        assert_eq!(nonzero, 1, "a single flow lands on a single worker");
        assert_eq!(report.packets, 1000);
    }

    #[test]
    fn elephants_measured_accurately_through_the_pipeline() {
        let mut records = Vec::new();
        for t in 0..50_000u64 {
            records.push(PacketRecord::new(key(1), 700, t));
            if t % 5 == 0 {
                records.push(PacketRecord::new(key(t as u32 + 10), 64, t));
            }
        }
        let (sys, report) = run_multicore(&records, &cfg(3));
        let est = sys.estimate_packets(&key(1));
        assert!((est - 50_000.0).abs() / 50_000.0 < 0.15, "estimate {est}");
        assert_eq!(report.per_worker_packets.iter().sum::<u64>(), records.len() as u64);
        assert!(report.throughput_pps > 0.0);
        // The elephant appears in the merged Top-K.
        let top = sys.top_k_by_packets(1);
        assert_eq!(top[0].0, key(1));
    }

    #[test]
    fn popcount_dispatch_is_roughly_balanced_for_random_sources() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let records: Vec<PacketRecord> = (0..20_000u64)
            .map(|t| {
                let k =
                    FlowKey::new(rng.gen::<u32>().to_be_bytes(), [1, 1, 1, 1], 1, 2, Protocol::Udp);
                PacketRecord::new(k, 64, t)
            })
            .collect();
        let (_, report) = run_multicore(&records, &cfg(2));
        // popcount parity of random u32s is a fair coin.
        assert!(report.imbalance() < 1.15, "imbalance {}", report.imbalance());
    }

    #[test]
    fn queue_depths_stay_bounded() {
        let records: Vec<PacketRecord> =
            (0..30_000u64).map(|t| PacketRecord::new(key(t as u32 % 64), 64, t)).collect();
        let (_, report) = run_multicore(&records, &cfg(2));
        assert!(!report.queue_depth_samples.is_empty());
        assert!(report.queue_depth_samples.iter().all(|&(_, d)| d <= 2 * 1024));
        // Sample timestamps are non-decreasing (trace order).
        assert!(report.queue_depth_samples.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn single_worker_multicore_matches_single_core_system() {
        let records: Vec<PacketRecord> =
            (0..20_000u64).map(|t| PacketRecord::new(key(3), 500, t)).collect();
        let (sys, _) = run_multicore(&records, &cfg(1));
        let mut single = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for r in &records {
            single.process(r);
        }
        let a = sys.estimate_packets(&key(3));
        let b = single.estimate_packets(&key(3));
        assert!((a - b).abs() < 1e-9, "identical config+stream => identical estimate: {a} vs {b}");
    }

    #[test]
    fn run_telemetry_reconciles_with_report() {
        let records: Vec<PacketRecord> =
            (0..30_000u64).map(|t| PacketRecord::new(key(t as u32 % 97), 64, t)).collect();
        let (sys, report) = run_multicore(&records, &cfg(3));
        // Per-worker live counters match the manager's dispatch accounting
        // and sum to the trace size.
        for (w, &n) in report.per_worker_packets.iter().enumerate() {
            assert_eq!(report.telemetry.counter(&format!("multicore.worker{w}.packets")), Some(n));
        }
        let worker_pkts: u64 = (0..3)
            .map(|w| report.telemetry.counter(&format!("multicore.worker{w}.packets")).unwrap())
            .sum();
        assert_eq!(worker_pkts, records.len() as u64);
        assert_eq!(report.telemetry.counter("multicore.packets"), Some(report.packets));
        assert_eq!(report.telemetry.counter("multicore.dropped"), Some(0));
        assert!(report.telemetry.histogram("multicore.queue_depth").unwrap().count > 0);
        // The merged shard snapshot sees every packet exactly once.
        let merged = sys.telemetry();
        assert_eq!(merged.counter("regulator.packets"), Some(records.len() as u64));
        assert_eq!(merged.counter("wsaf.accumulates"), merged.counter("regulator.updates"));
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        let _ = run_multicore(&[], &cfg(0));
    }
}

#[cfg(test)]
mod backpressure_tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [3, 3, 3, 3], 1, 2, Protocol::Tcp)
    }

    #[test]
    fn block_policy_never_drops() {
        let records: Vec<PacketRecord> =
            (0..50_000u64).map(|t| PacketRecord::new(key(t as u32 % 128), 64, t)).collect();
        let cfg = MultiCoreConfig {
            workers: 4,
            queue_capacity: 2,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
            backpressure: BackpressurePolicy::Block,
        };
        let (_, report) = run_multicore(&records, &cfg);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.packets, 50_000);
    }

    #[test]
    fn drop_policy_conserves_packet_accounting() {
        // Tiny queues + bursty dispatch: some drops are likely, but
        // processed + dropped must always equal the input.
        let records: Vec<PacketRecord> =
            (0..200_000u64).map(|t| PacketRecord::new(key(t as u32 % 512), 64, t)).collect();
        let cfg = MultiCoreConfig {
            workers: 4,
            queue_capacity: 1,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
            backpressure: BackpressurePolicy::Drop,
        };
        let (_, report) = run_multicore(&records, &cfg);
        assert_eq!(report.packets + report.dropped, 200_000);
        assert_eq!(report.per_worker_packets.iter().sum::<u64>(), report.packets);
    }

    #[test]
    fn drop_policy_still_measures_what_it_saw() {
        // Even with drops, an elephant's estimate must track the packets
        // that actually reached a worker (the paper compares against the
        // same dropped stream for exactly this reason).
        let records: Vec<PacketRecord> =
            (0..100_000u64).map(|t| PacketRecord::new(key(1), 64, t)).collect();
        let cfg = MultiCoreConfig {
            workers: 2,
            queue_capacity: 4,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
            backpressure: BackpressurePolicy::Drop,
        };
        let (sys, report) = run_multicore(&records, &cfg);
        let delivered = report.per_worker_packets.iter().sum::<u64>();
        let est = sys.estimate_packets(&key(1));
        let rel = (est - delivered as f64).abs() / delivered.max(1) as f64;
        assert!(rel < 0.2, "estimate {est} vs delivered {delivered}");
    }
}
