//! The multi-core measurement system of paper Fig. 5, with batched ingest.
//!
//! A *manager* thread ingests the packet stream and dispatches packets
//! to one of `N` *worker* threads through bounded FIFO queues; the worker
//! index is the popcount of the source IP address modulo `N` (the paper's
//! balancing rule, which also guarantees all packets of a flow meet the
//! same worker). Each worker owns an exclusive [`InstaMeasure`] instance —
//! private FlowRegulator memory and a private WSAF shard — so workers never
//! contend on counter memory, exactly as the paper allocates "memory
//! blocks exclusively to each worker core".
//!
//! # Batched dispatch
//!
//! Sending one `PacketRecord` per channel operation makes synchronization
//! the hot path long before the sketch is (the same economics that give
//! PriMe its SRAM front buffer: amortize per-item transfer cost into
//! batches). The manager therefore accumulates packets into per-worker
//! batch buffers of [`MultiCoreConfig::batch_size`] packets and ships whole
//! `Vec<PacketRecord>` batches; a worker drains a whole batch into its
//! [`InstaMeasure`] before touching the queue again. Buffers are recycled
//! through a return channel so the steady state allocates nothing.
//!
//! The contract, which the differential test suite pins down exactly:
//!
//! * **Order** — batching never reorders packets within a worker's stream,
//!   so the per-worker measurement state is bit-identical to a single-core
//!   replay of that worker's shard of the trace, at any batch size.
//! * **Flush** — partial batches are flushed at end-of-stream; under
//!   [`BackpressurePolicy::Block`] no packet is ever lost.
//! * **Drop accounting** — under [`BackpressurePolicy::Drop`] a full queue
//!   drops the *whole batch* (a mirror-port overrun loses a burst, not one
//!   frame) and every dropped packet is counted exactly, per worker:
//!   `processed + dropped == offered` always holds.

use std::thread;
use std::time::Instant;

use crossbeam::channel;
use instameasure_packet::{FlowKey, PacketRecord};
use instameasure_sketch::FilterStats;
use instameasure_telemetry::{Instrumented, SharedRegistry, Snapshot};

use crate::{InstaMeasure, InstaMeasureConfig};

/// Largest accepted [`MultiCoreConfig::batch_size`]; beyond this a batch
/// costs more cache than the channel synchronization it amortizes.
pub const MAX_BATCH_SIZE: usize = 65_536;

/// What the manager does when a worker's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block until the worker drains (lossless; offline replay mode).
    #[default]
    Block,
    /// Drop the batch and count its packets — how a real tap behaves when
    /// overrun (the paper's mirror port "starts to drop packets when
    /// port capacity is exceeded", §IV-B).
    Drop,
}

/// Configuration of the multi-core system.
///
/// Construct via [`MultiCoreConfig::builder`] for validated parameters, or
/// as a struct literal when the values are known-good constants.
#[derive(Debug, Clone, Copy)]
pub struct MultiCoreConfig {
    /// Number of worker threads (the paper evaluates 1–4).
    pub workers: usize,
    /// Capacity of each worker's FIFO queue, in packets (rounded up to a
    /// whole number of batches).
    pub queue_capacity: usize,
    /// Packets per dispatch batch. 1 degenerates to per-packet sends;
    /// the default 256 amortizes channel synchronization ~256×.
    pub batch_size: usize,
    /// Per-worker measurement configuration (each worker gets its own
    /// sketch and WSAF shard of this size).
    pub per_worker: InstaMeasureConfig,
    /// Full-queue behaviour.
    pub backpressure: BackpressurePolicy,
}

impl Default for MultiCoreConfig {
    fn default() -> Self {
        MultiCoreConfig {
            workers: 4,
            queue_capacity: 4096,
            batch_size: 256,
            per_worker: InstaMeasureConfig::default(),
            backpressure: BackpressurePolicy::Block,
        }
    }
}

impl MultiCoreConfig {
    /// Starts building a validated config from the defaults.
    #[must_use]
    pub fn builder() -> MultiCoreConfigBuilder {
        MultiCoreConfigBuilder::default()
    }

    /// Per-worker channel capacity in batches (at least one).
    #[must_use]
    pub(crate) fn queue_batches(&self) -> usize {
        self.queue_capacity.div_ceil(self.batch_size).max(1)
    }
}

/// Rejected [`MultiCoreConfigBuilder`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MultiCoreConfigError {
    /// `workers` was zero.
    NoWorkers,
    /// `queue_capacity` was zero.
    ZeroQueueCapacity,
    /// `batch_size` was zero or above [`MAX_BATCH_SIZE`].
    BatchSize {
        /// The rejected value.
        got: usize,
    },
}

impl core::fmt::Display for MultiCoreConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MultiCoreConfigError::NoWorkers => write!(f, "need at least one worker"),
            MultiCoreConfigError::ZeroQueueCapacity => {
                write!(f, "queue capacity must be at least one packet")
            }
            MultiCoreConfigError::BatchSize { got } => {
                write!(f, "batch size must be in 1..={MAX_BATCH_SIZE}, got {got}")
            }
        }
    }
}

impl std::error::Error for MultiCoreConfigError {}

/// Validating builder for [`MultiCoreConfig`].
///
/// ```
/// use instameasure_core::multicore::MultiCoreConfig;
/// use instameasure_core::InstaMeasureConfig;
///
/// let cfg = MultiCoreConfig::builder()
///     .workers(2)
///     .batch_size(64)
///     .per_worker(InstaMeasureConfig::default().small_for_tests())
///     .build()?;
/// assert_eq!(cfg.batch_size, 64);
/// assert!(MultiCoreConfig::builder().batch_size(0).build().is_err());
/// # Ok::<(), instameasure_core::multicore::MultiCoreConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultiCoreConfigBuilder {
    cfg: MultiCoreConfig,
}

impl MultiCoreConfigBuilder {
    /// Sets the worker count (default 4).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Sets the per-worker queue capacity in packets (default 4096).
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.cfg.queue_capacity = n;
        self
    }

    /// Sets the dispatch batch size in packets (default 256).
    #[must_use]
    pub fn batch_size(mut self, n: usize) -> Self {
        self.cfg.batch_size = n;
        self
    }

    /// Sets the per-worker measurement configuration.
    #[must_use]
    pub fn per_worker(mut self, cfg: InstaMeasureConfig) -> Self {
        self.cfg.per_worker = cfg;
        self
    }

    /// Sets the full-queue behaviour (default [`BackpressurePolicy::Block`]).
    #[must_use]
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.cfg.backpressure = policy;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// Returns [`MultiCoreConfigError`] naming the rejected parameter.
    pub fn build(self) -> Result<MultiCoreConfig, MultiCoreConfigError> {
        if self.cfg.workers == 0 {
            return Err(MultiCoreConfigError::NoWorkers);
        }
        if self.cfg.queue_capacity == 0 {
            return Err(MultiCoreConfigError::ZeroQueueCapacity);
        }
        if self.cfg.batch_size == 0 || self.cfg.batch_size > MAX_BATCH_SIZE {
            return Err(MultiCoreConfigError::BatchSize { got: self.cfg.batch_size });
        }
        Ok(self.cfg)
    }
}

/// Routes a flow to its worker: popcount of the source address mod `N`
/// (paper §IV-C: "the number of 1 bits of source IP address is used to
/// determine which queue the packet goes into").
///
/// # Panics
///
/// Panics if `workers` is zero.
#[inline]
#[must_use]
pub fn worker_for(key: &FlowKey, workers: usize) -> usize {
    assert!(workers > 0, "need at least one worker");
    key.src_ip_u32().count_ones() as usize % workers
}

/// The merged view over all worker shards after a run.
#[derive(Debug)]
pub struct MultiCoreSystem {
    shards: Vec<InstaMeasure>,
}

impl MultiCoreSystem {
    /// Number of workers/shards.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Per-flow packet estimate (routed to the owning shard).
    #[must_use]
    pub fn estimate_packets(&self, key: &FlowKey) -> f64 {
        self.shards[worker_for(key, self.shards.len())].estimate_packets(key)
    }

    /// Per-flow byte estimate (routed to the owning shard).
    #[must_use]
    pub fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        self.shards[worker_for(key, self.shards.len())].estimate_bytes(key)
    }

    /// Read access to one shard.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn shard(&self, idx: usize) -> &InstaMeasure {
        &self.shards[idx]
    }

    /// Filter work counters for each worker.
    #[must_use]
    pub fn filter_stats(&self) -> Vec<FilterStats> {
        self.shards.iter().map(InstaMeasure::filter_stats).collect()
    }

    /// Filter work counters for each worker.
    #[deprecated(since = "0.6.0", note = "renamed to `filter_stats`")]
    #[must_use]
    pub fn regulator_stats(&self) -> Vec<FilterStats> {
        self.filter_stats()
    }

    /// Telemetry of one shard (its `regulator.*` + `wsaf.*` metrics).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn shard_telemetry(&self, idx: usize) -> Snapshot {
        self.shards[idx].telemetry()
    }

    /// Global Top-K by packets, merged across shards.
    #[must_use]
    pub fn top_k_by_packets(&self, k: usize) -> Vec<(FlowKey, f64)> {
        let mut all: Vec<(FlowKey, f64)> = self
            .shards
            .iter()
            .flat_map(|s| s.wsaf().top_k_by_packets(k))
            .map(|e| (e.key, e.packets))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1));
        all.truncate(k);
        all
    }
}

impl Instrumented for MultiCoreSystem {
    /// The shards' snapshots merged into one aggregate view: `regulator.*`
    /// and `wsaf.*` counters sum across workers, histograms sum bucket-wise,
    /// gauges keep the worst shard.
    fn telemetry(&self) -> Snapshot {
        let mut merged = Snapshot::new();
        for shard in &self.shards {
            merged.merge(&shard.telemetry());
        }
        merged
    }
}

/// Timing and load metrics of one multi-core run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock processing time in nanoseconds (dispatch + drain).
    pub wall_nanos: u64,
    /// Packets processed (offered minus dropped).
    pub packets: u64,
    /// End-to-end throughput in packets/second of wall time.
    pub throughput_pps: f64,
    /// Packets handled by each worker (dispatch balance).
    pub per_worker_packets: Vec<u64>,
    /// Packets dropped at each worker's full queue (always all-zero under
    /// [`BackpressurePolicy::Block`]).
    pub per_worker_dropped: Vec<u64>,
    /// Batches successfully handed to worker queues, including end-of-stream
    /// flushes.
    pub batches_sent: u64,
    /// Partial batches flushed at end-of-stream (at most one per worker).
    pub batch_flushes: u64,
    /// Queue depth samples taken by the manager while dispatching (one
    /// per `sample_every` packets), as the paper plots in Fig. 12(c):
    /// `(packet timestamp, queued packets)`. Depth is counted in whole
    /// batches, so it is an upper bound on the exact packet count.
    pub queue_depth_samples: Vec<(u64, usize)>,
    /// Sum of busy-loop work across workers in nanoseconds (CPU-work
    /// proxy; meaningful even on a host with fewer physical cores than
    /// workers).
    pub worker_busy_nanos: Vec<u64>,
    /// Packets dropped at full queues, summed over workers (always 0 under
    /// [`BackpressurePolicy::Block`]).
    pub dropped: u64,
    /// Run-level telemetry collected live through a [`SharedRegistry`]:
    /// `multicore.worker{w}.packets` and `.busy_nanos` per worker,
    /// `multicore.packets`/`dropped` counters, the `multicore.queue_depth`
    /// histogram sampled by the manager, a `multicore.throughput_pps`
    /// gauge, and the batched-ingest counters `ingest.batches_sent`,
    /// `ingest.batch_flushes`, `ingest.dropped_pkts` (total and per worker
    /// as `ingest.worker{w}.dropped_pkts`) plus the `ingest.batch_occupancy`
    /// histogram over assembled batch sizes. Hot-path instrumentation rides
    /// along: the `ingest.batch_fill` histogram records the size of every
    /// batch a worker drained through [`InstaMeasure::process_batch`] and
    /// the `hotpath.prefetch_enabled` gauge reports whether software
    /// prefetch hints are compiled in (1.0 on `x86_64`, 0.0 elsewhere).
    pub telemetry: Snapshot,
}

impl RunReport {
    /// Dispatch imbalance: max over min per-worker packet share (1.0 is
    /// perfectly balanced).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let max = self.per_worker_packets.iter().copied().max().unwrap_or(0);
        let min = self.per_worker_packets.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// Runs the full manager/worker pipeline over a pre-loaded packet stream
/// (the paper pre-loads the CAIDA trace into memory for its speed tests,
/// §V-B) and returns the merged measurement plus the run report.
///
/// # Panics
///
/// Panics if the config is invalid (would be rejected by
/// [`MultiCoreConfig::builder`]) or a worker thread panics.
#[must_use]
pub fn run_multicore(
    records: &[PacketRecord],
    cfg: &MultiCoreConfig,
) -> (MultiCoreSystem, RunReport) {
    run_multicore_stream(records.iter().copied(), cfg)
}

/// Streaming variant of [`run_multicore`]: ingests packets from any
/// iterator, so arbitrarily long traces flow through the pipeline with
/// O(batch × workers) manager memory (the `stress` bench streams tens of
/// millions of packets this way).
///
/// # Panics
///
/// Panics if the config is invalid (would be rejected by
/// [`MultiCoreConfig::builder`]) or a worker thread panics.
#[must_use]
pub fn run_multicore_stream<I>(packets: I, cfg: &MultiCoreConfig) -> (MultiCoreSystem, RunReport)
where
    I: IntoIterator<Item = PacketRecord>,
{
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(
        cfg.batch_size > 0 && cfg.batch_size <= MAX_BATCH_SIZE,
        "batch size must be in 1..={MAX_BATCH_SIZE}"
    );
    assert!(cfg.queue_capacity > 0, "queue capacity must be at least one packet");
    let batch_size = cfg.batch_size;
    let queue_batches = cfg.queue_batches();
    let sample_every = 8192;
    let registry = SharedRegistry::new();
    registry
        .gauge("hotpath.prefetch_enabled")
        .set(if instameasure_packet::prefetch::prefetch_enabled() { 1.0 } else { 0.0 });
    registry
        .gauge("hotpath.prefetch_distance")
        .set(instameasure_packet::prefetch::prefetch_distance() as f64);
    registry.gauge("hotpath.simd_enabled").set(if instameasure_packet::simd::simd_enabled() {
        1.0
    } else {
        0.0
    });
    for feature in instameasure_packet::simd::cpu_features() {
        registry.gauge(&format!("hotpath.cpu.{feature}")).set(1.0);
    }
    let queue_depth = registry.histogram("multicore.queue_depth");
    let dropped_ctr = registry.counter("multicore.dropped");
    let batches_ctr = registry.counter("ingest.batches_sent");
    let flushes_ctr = registry.counter("ingest.batch_flushes");
    let ingest_dropped_ctr = registry.counter("ingest.dropped_pkts");
    let occupancy = registry.histogram("ingest.batch_occupancy");
    let worker_dropped_ctrs: Vec<_> = (0..cfg.workers)
        .map(|w| registry.counter(&format!("ingest.worker{w}.dropped_pkts")))
        .collect();

    let mut senders = Vec::with_capacity(cfg.workers);
    let mut receivers = Vec::with_capacity(cfg.workers);
    let mut recycle_txs = Vec::with_capacity(cfg.workers);
    let mut recycle_rxs = Vec::with_capacity(cfg.workers);
    for _ in 0..cfg.workers {
        let (tx, rx) = channel::bounded::<Vec<PacketRecord>>(queue_batches);
        senders.push(tx);
        receivers.push(rx);
        // Return path for drained batch buffers; sized so every in-flight
        // buffer fits and the steady state allocates nothing.
        let (rtx, rrx) = channel::bounded::<Vec<PacketRecord>>(queue_batches + 2);
        recycle_txs.push(rtx);
        recycle_rxs.push(rrx);
    }

    let start = Instant::now();
    let mut per_worker_packets = vec![0u64; cfg.workers];
    let mut per_worker_dropped = vec![0u64; cfg.workers];
    let mut queue_depth_samples = Vec::new();
    let mut offered = 0u64;

    let (shards, worker_busy_nanos) = thread::scope(|scope| {
        let handles: Vec<_> = receivers
            .into_iter()
            .zip(recycle_txs)
            .enumerate()
            .map(|(w, (rx, recycle_tx))| {
                let per_worker = cfg.per_worker;
                let packets_ctr = registry.counter(&format!("multicore.worker{w}.packets"));
                let busy_ctr = registry.counter(&format!("multicore.worker{w}.busy_nanos"));
                let batch_fill = registry.histogram("ingest.batch_fill");
                scope.spawn(move || {
                    let mut im = InstaMeasure::new(per_worker);
                    let busy_start = Instant::now();
                    while let Ok(mut batch) = rx.recv() {
                        im.process_batch(&batch);
                        batch_fill.observe(batch.len() as u64);
                        packets_ctr.add(batch.len() as u64);
                        batch.clear();
                        // Hand the drained buffer back; if the return lane
                        // is full or the manager is gone, let it drop.
                        let _ = recycle_tx.try_send(batch);
                    }
                    let nanos = busy_start.elapsed().as_nanos() as u64;
                    busy_ctr.add(nanos);
                    (im, nanos)
                })
            })
            .collect();

        // Ships one assembled batch; gives the buffer back on a Drop-mode
        // full queue so the manager can reuse it.
        let ship = |w: usize,
                    full: Vec<PacketRecord>,
                    per_worker_packets: &mut [u64],
                    per_worker_dropped: &mut [u64]|
         -> Option<Vec<PacketRecord>> {
            let n = full.len() as u64;
            occupancy.observe(n);
            match cfg.backpressure {
                BackpressurePolicy::Block => {
                    senders[w].send(full).expect("worker alive while manager sends");
                    per_worker_packets[w] += n;
                    batches_ctr.inc();
                    None
                }
                BackpressurePolicy::Drop => match senders[w].try_send(full) {
                    Ok(()) => {
                        per_worker_packets[w] += n;
                        batches_ctr.inc();
                        None
                    }
                    Err(channel::TrySendError::Full(batch)) => {
                        per_worker_dropped[w] += n;
                        dropped_ctr.add(n);
                        ingest_dropped_ctr.add(n);
                        worker_dropped_ctrs[w].add(n);
                        Some(batch)
                    }
                    Err(channel::TrySendError::Disconnected(_)) => {
                        unreachable!("worker alive while manager sends")
                    }
                },
            }
        };

        // Manager loop: route by popcount(src) % N into per-worker batch
        // buffers; ship each buffer when it fills.
        let mut pending: Vec<Vec<PacketRecord>> =
            (0..cfg.workers).map(|_| Vec::with_capacity(batch_size)).collect();
        for pkt in packets {
            let w = worker_for(&pkt.key, cfg.workers);
            pending[w].push(pkt);
            if pending[w].len() == batch_size {
                let full = std::mem::take(&mut pending[w]);
                match ship(w, full, &mut per_worker_packets, &mut per_worker_dropped) {
                    // Dropped batch: its (cleared) buffer is the next one.
                    Some(mut reclaimed) => {
                        reclaimed.clear();
                        pending[w] = reclaimed;
                    }
                    None => {
                        pending[w] = recycle_rxs[w]
                            .try_recv()
                            .unwrap_or_else(|_| Vec::with_capacity(batch_size));
                    }
                }
            }
            if offered.is_multiple_of(sample_every) {
                let depth: usize =
                    senders.iter().map(channel::Sender::len).sum::<usize>() * batch_size;
                queue_depth.observe(depth as u64);
                queue_depth_samples.push((pkt.ts_nanos, depth));
            }
            offered += 1;
        }

        // End of stream: flush every partial batch (the flush rule — a
        // tail shorter than batch_size must still reach its worker).
        for (w, buf) in pending.iter_mut().enumerate() {
            let rest = std::mem::take(buf);
            if rest.is_empty() {
                continue;
            }
            flushes_ctr.inc();
            let _ = ship(w, rest, &mut per_worker_packets, &mut per_worker_dropped);
        }
        drop(senders); // close queues; workers drain and exit

        let mut shards = Vec::with_capacity(cfg.workers);
        let mut busy = Vec::with_capacity(cfg.workers);
        for h in handles {
            let (im, nanos) = h.join().expect("worker thread must not panic");
            shards.push(im);
            busy.push(nanos);
        }
        (shards, busy)
    });

    let wall_nanos = start.elapsed().as_nanos() as u64;
    let dropped: u64 = per_worker_dropped.iter().sum();
    let packets = offered - dropped;
    let throughput_pps =
        if wall_nanos == 0 { 0.0 } else { packets as f64 * 1e9 / wall_nanos as f64 };
    registry.counter("multicore.packets").add(packets);
    registry.gauge("multicore.throughput_pps").set(throughput_pps);
    let report = RunReport {
        wall_nanos,
        packets,
        throughput_pps,
        per_worker_packets,
        per_worker_dropped,
        batches_sent: batches_ctr.get(),
        batch_flushes: flushes_ctr.get(),
        queue_depth_samples,
        worker_busy_nanos,
        dropped,
        telemetry: registry.snapshot(),
    };
    (MultiCoreSystem { shards }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [5, 5, 5, 5], 1000, 80, Protocol::Tcp)
    }

    fn cfg(workers: usize) -> MultiCoreConfig {
        MultiCoreConfig {
            workers,
            queue_capacity: 1024,
            batch_size: 256,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
            backpressure: BackpressurePolicy::Block,
        }
    }

    #[test]
    fn dispatch_is_deterministic_and_in_range() {
        for i in 0..1000 {
            let w = worker_for(&key(i), 4);
            assert!(w < 4);
            assert_eq!(w, worker_for(&key(i), 4));
        }
    }

    #[test]
    fn builder_validates_every_knob() {
        assert!(MultiCoreConfig::builder().build().is_ok());
        assert_eq!(
            MultiCoreConfig::builder().workers(0).build().unwrap_err(),
            MultiCoreConfigError::NoWorkers
        );
        assert_eq!(
            MultiCoreConfig::builder().queue_capacity(0).build().unwrap_err(),
            MultiCoreConfigError::ZeroQueueCapacity
        );
        assert_eq!(
            MultiCoreConfig::builder().batch_size(0).build().unwrap_err(),
            MultiCoreConfigError::BatchSize { got: 0 }
        );
        assert_eq!(
            MultiCoreConfig::builder().batch_size(MAX_BATCH_SIZE + 1).build().unwrap_err(),
            MultiCoreConfigError::BatchSize { got: MAX_BATCH_SIZE + 1 }
        );
        let cfg = MultiCoreConfig::builder()
            .workers(2)
            .queue_capacity(100)
            .batch_size(64)
            .backpressure(BackpressurePolicy::Drop)
            .build()
            .unwrap();
        assert_eq!((cfg.workers, cfg.queue_capacity, cfg.batch_size), (2, 100, 64));
        assert_eq!(cfg.backpressure, BackpressurePolicy::Drop);
        assert_eq!(cfg.queue_batches(), 2, "100 packets round up to 2 batches of 64");
    }

    #[test]
    fn all_packets_of_a_flow_meet_one_worker() {
        let records: Vec<PacketRecord> =
            (0..1000u64).map(|t| PacketRecord::new(key(7), 100, t)).collect();
        let (_, report) = run_multicore(&records, &cfg(4));
        let nonzero = report.per_worker_packets.iter().filter(|&&c| c > 0).count();
        assert_eq!(nonzero, 1, "a single flow lands on a single worker");
        assert_eq!(report.packets, 1000);
    }

    #[test]
    fn elephants_measured_accurately_through_the_pipeline() {
        let mut records = Vec::new();
        for t in 0..50_000u64 {
            records.push(PacketRecord::new(key(1), 700, t));
            if t % 5 == 0 {
                records.push(PacketRecord::new(key(t as u32 + 10), 64, t));
            }
        }
        let (sys, report) = run_multicore(&records, &cfg(3));
        let est = sys.estimate_packets(&key(1));
        assert!((est - 50_000.0).abs() / 50_000.0 < 0.15, "estimate {est}");
        assert_eq!(report.per_worker_packets.iter().sum::<u64>(), records.len() as u64);
        assert!(report.throughput_pps > 0.0);
        // The elephant appears in the merged Top-K.
        let top = sys.top_k_by_packets(1);
        assert_eq!(top[0].0, key(1));
    }

    #[test]
    fn popcount_dispatch_is_roughly_balanced_for_random_sources() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let records: Vec<PacketRecord> = (0..20_000u64)
            .map(|t| {
                let k =
                    FlowKey::new(rng.gen::<u32>().to_be_bytes(), [1, 1, 1, 1], 1, 2, Protocol::Udp);
                PacketRecord::new(k, 64, t)
            })
            .collect();
        let (_, report) = run_multicore(&records, &cfg(2));
        // popcount parity of random u32s is a fair coin.
        assert!(report.imbalance() < 1.15, "imbalance {}", report.imbalance());
    }

    #[test]
    fn queue_depths_stay_bounded() {
        let records: Vec<PacketRecord> =
            (0..30_000u64).map(|t| PacketRecord::new(key(t as u32 % 64), 64, t)).collect();
        let (_, report) = run_multicore(&records, &cfg(2));
        assert!(!report.queue_depth_samples.is_empty());
        // Each worker holds at most queue_batches whole batches.
        let bound = 2 * cfg(2).queue_batches() * cfg(2).batch_size;
        assert!(report.queue_depth_samples.iter().all(|&(_, d)| d <= bound));
        // Sample timestamps are non-decreasing (trace order).
        assert!(report.queue_depth_samples.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn single_worker_multicore_matches_single_core_system() {
        let records: Vec<PacketRecord> =
            (0..20_000u64).map(|t| PacketRecord::new(key(3), 500, t)).collect();
        let (sys, _) = run_multicore(&records, &cfg(1));
        let mut single = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for r in &records {
            single.process(r);
        }
        let a = sys.estimate_packets(&key(3));
        let b = single.estimate_packets(&key(3));
        assert!((a - b).abs() < 1e-9, "identical config+stream => identical estimate: {a} vs {b}");
    }

    #[test]
    fn batch_size_does_not_change_what_is_measured() {
        let records: Vec<PacketRecord> =
            (0..40_000u64).map(|t| PacketRecord::new(key(t as u32 % 300), 120, t)).collect();
        let (reference, _) = run_multicore(&records, &cfg(3));
        for batch_size in [1usize, 7, 255, 1024] {
            let mut c = cfg(3);
            c.batch_size = batch_size;
            let (sys, report) = run_multicore(&records, &c);
            assert_eq!(report.packets, records.len() as u64);
            for i in 0..300u32 {
                let a = sys.estimate_packets(&key(i));
                let b = reference.estimate_packets(&key(i));
                assert!((a - b).abs() < 1e-12, "batch {batch_size} flow {i}: {a} vs reference {b}");
            }
        }
    }

    #[test]
    fn partial_batches_are_flushed_at_end_of_stream() {
        // 10 packets with batch_size 256: nothing ever fills a batch, so
        // everything arrives via the end-of-stream flush.
        let records: Vec<PacketRecord> =
            (0..10u64).map(|t| PacketRecord::new(key(t as u32), 64, t)).collect();
        let (_, report) = run_multicore(&records, &cfg(4));
        assert_eq!(report.packets, 10);
        assert_eq!(report.dropped, 0);
        assert!(report.batch_flushes >= 1);
        assert_eq!(report.batches_sent, report.telemetry.counter("ingest.batches_sent").unwrap());
        assert_eq!(report.batch_flushes, report.telemetry.counter("ingest.batch_flushes").unwrap());
        let occ = report.telemetry.histogram("ingest.batch_occupancy").unwrap();
        assert_eq!(occ.sum, 10, "occupancy histogram sums to the packets shipped");
    }

    #[test]
    fn empty_stream_is_fine() {
        let (sys, report) = run_multicore(&[], &cfg(2));
        assert_eq!(report.packets, 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.batches_sent, 0);
        assert_eq!(report.batch_flushes, 0);
        assert_eq!(sys.workers(), 2);
    }

    #[test]
    fn run_telemetry_reconciles_with_report() {
        let records: Vec<PacketRecord> =
            (0..30_000u64).map(|t| PacketRecord::new(key(t as u32 % 97), 64, t)).collect();
        let (sys, report) = run_multicore(&records, &cfg(3));
        // Per-worker live counters match the manager's dispatch accounting
        // and sum to the trace size.
        for (w, &n) in report.per_worker_packets.iter().enumerate() {
            assert_eq!(report.telemetry.counter(&format!("multicore.worker{w}.packets")), Some(n));
        }
        let worker_pkts: u64 = (0..3)
            .map(|w| report.telemetry.counter(&format!("multicore.worker{w}.packets")).unwrap())
            .sum();
        assert_eq!(worker_pkts, records.len() as u64);
        assert_eq!(report.telemetry.counter("multicore.packets"), Some(report.packets));
        assert_eq!(report.telemetry.counter("multicore.dropped"), Some(0));
        assert_eq!(report.telemetry.counter("ingest.dropped_pkts"), Some(0));
        assert!(report.telemetry.histogram("multicore.queue_depth").unwrap().count > 0);
        // Every shipped packet appears in exactly one occupancy-histogram
        // batch.
        let occ = report.telemetry.histogram("ingest.batch_occupancy").unwrap();
        assert_eq!(occ.sum, records.len() as u64);
        assert_eq!(occ.count, report.batches_sent);
        // Workers drained the same packets through the batched hot path.
        let fill = report.telemetry.histogram("ingest.batch_fill").unwrap();
        assert_eq!(fill.sum, records.len() as u64);
        assert_eq!(fill.count, report.batches_sent);
        let expected_prefetch =
            if instameasure_packet::prefetch::prefetch_enabled() { 1.0 } else { 0.0 };
        assert_eq!(report.telemetry.gauge("hotpath.prefetch_enabled"), Some(expected_prefetch));
        let expected_simd = if instameasure_packet::simd::simd_enabled() { 1.0 } else { 0.0 };
        assert_eq!(report.telemetry.gauge("hotpath.simd_enabled"), Some(expected_simd));
        assert_eq!(
            report.telemetry.gauge("hotpath.prefetch_distance"),
            Some(instameasure_packet::prefetch::prefetch_distance() as f64)
        );
        for feature in instameasure_packet::simd::cpu_features() {
            assert_eq!(report.telemetry.gauge(&format!("hotpath.cpu.{feature}")), Some(1.0));
        }
        // The merged shard snapshot sees every packet exactly once.
        let merged = sys.telemetry();
        assert_eq!(merged.counter("regulator.packets"), Some(records.len() as u64));
        assert_eq!(merged.counter("wsaf.accumulates"), merged.counter("regulator.updates"));
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        let _ = run_multicore(&[], &cfg(0));
    }

    #[test]
    #[should_panic(expected = "batch size must be in 1..=")]
    fn zero_batch_size_rejected() {
        let mut c = cfg(1);
        c.batch_size = 0;
        let _ = run_multicore(&[], &c);
    }
}

#[cfg(test)]
mod backpressure_tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [3, 3, 3, 3], 1, 2, Protocol::Tcp)
    }

    #[test]
    fn block_policy_never_drops() {
        let records: Vec<PacketRecord> =
            (0..50_000u64).map(|t| PacketRecord::new(key(t as u32 % 128), 64, t)).collect();
        let cfg = MultiCoreConfig {
            workers: 4,
            queue_capacity: 2,
            batch_size: 1,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
            backpressure: BackpressurePolicy::Block,
        };
        let (_, report) = run_multicore(&records, &cfg);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.packets, 50_000);
    }

    #[test]
    fn drop_policy_conserves_packet_accounting() {
        // Tiny queues + bursty dispatch: some drops are likely, but
        // processed + dropped must always equal the input — at batch
        // granularity, since an overrun loses the whole batch.
        let records: Vec<PacketRecord> =
            (0..200_000u64).map(|t| PacketRecord::new(key(t as u32 % 512), 64, t)).collect();
        let cfg = MultiCoreConfig {
            workers: 4,
            queue_capacity: 1,
            batch_size: 16,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
            backpressure: BackpressurePolicy::Drop,
        };
        let (_, report) = run_multicore(&records, &cfg);
        assert_eq!(report.packets + report.dropped, 200_000);
        assert_eq!(report.per_worker_packets.iter().sum::<u64>(), report.packets);
        assert_eq!(report.per_worker_dropped.iter().sum::<u64>(), report.dropped);
        // Per-worker drop counters reconcile report vs live telemetry.
        for (w, &d) in report.per_worker_dropped.iter().enumerate() {
            assert_eq!(
                report.telemetry.counter(&format!("ingest.worker{w}.dropped_pkts")),
                Some(d)
            );
        }
        assert_eq!(report.telemetry.counter("ingest.dropped_pkts"), Some(report.dropped));
    }

    #[test]
    fn drop_policy_still_measures_what_it_saw() {
        // Even with drops, an elephant's estimate must track the packets
        // that actually reached a worker (the paper compares against the
        // same dropped stream for exactly this reason).
        let records: Vec<PacketRecord> =
            (0..100_000u64).map(|t| PacketRecord::new(key(1), 64, t)).collect();
        let cfg = MultiCoreConfig {
            workers: 2,
            queue_capacity: 4,
            batch_size: 4,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
            backpressure: BackpressurePolicy::Drop,
        };
        let (sys, report) = run_multicore(&records, &cfg);
        let delivered = report.per_worker_packets.iter().sum::<u64>();
        let est = sys.estimate_packets(&key(1));
        let rel = (est - delivered as f64).abs() / delivered.max(1) as f64;
        assert!(rel < 0.2, "estimate {est} vs delivered {delivered}");
    }
}
