//! Online heavy-hitter detection over the WSAF (paper §V, Figs. 9b / 14).

use std::collections::{HashMap, HashSet};

use instameasure_packet::{FlowKey, PacketRecord};

use crate::metrics::{detection_rates, DetectionRates};
use crate::{InstaMeasure, InstaMeasureConfig};

/// What a heavy hitter is measured in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HhMetric {
    /// Packet-count heavy hitters.
    Packets,
    /// Byte-volume heavy hitters.
    Bytes,
}

/// A detected heavy hitter with its detection timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// The detected flow.
    pub key: FlowKey,
    /// Trace time (nanoseconds) at which the WSAF estimate first crossed
    /// the threshold.
    pub detected_at: u64,
    /// The estimate value at detection time.
    pub estimate: f64,
}

/// An InstaMeasure pipeline with an attached threshold detector.
///
/// Detection is *saturation-based*: the check runs only when a flow's
/// accumulated WSAF value changes (i.e. on FlowRegulator saturation), which
/// is exactly the paper's design point — cheap enough to run inline, at the
/// cost of up to one retention cycle of delay (bounded in Fig. 9b).
#[derive(Debug)]
pub struct HeavyHitterDetector {
    system: InstaMeasure,
    metric: HhMetric,
    threshold: f64,
    detections: HashMap<FlowKey, Detection>,
}

impl HeavyHitterDetector {
    /// Creates a detector flagging flows whose metric crosses `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    #[must_use]
    pub fn new(cfg: InstaMeasureConfig, metric: HhMetric, threshold: f64) -> Self {
        assert!(threshold > 0.0 && threshold.is_finite(), "threshold must be positive");
        HeavyHitterDetector {
            system: InstaMeasure::new(cfg),
            metric,
            threshold,
            detections: HashMap::new(),
        }
    }

    /// The configured threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Feeds a packet; returns a [`Detection`] the first time this
    /// packet's flow crosses the threshold.
    pub fn process(&mut self, pkt: &PacketRecord) -> Option<Detection> {
        let update = self.system.process(pkt)?;
        if self.detections.contains_key(&update.key) {
            return None;
        }
        let estimate = match self.metric {
            HhMetric::Packets => self.system.estimate_packets(&update.key),
            HhMetric::Bytes => self.system.estimate_bytes(&update.key),
        };
        if estimate >= self.threshold {
            let d = Detection { key: update.key, detected_at: pkt.ts_nanos, estimate };
            self.detections.insert(update.key, d);
            return Some(d);
        }
        None
    }

    /// All detections so far.
    #[must_use]
    pub fn detections(&self) -> &HashMap<FlowKey, Detection> {
        &self.detections
    }

    /// Detected flow set.
    #[must_use]
    pub fn detected_set(&self) -> HashSet<FlowKey> {
        self.detections.keys().copied().collect()
    }

    /// The underlying measurement system.
    #[must_use]
    pub fn system(&self) -> &InstaMeasure {
        &self.system
    }

    /// Final sweep at the end of a measurement window: flows whose sketch
    /// residual pushed them over the threshold *after* their last WSAF
    /// update have never been checked by [`HeavyHitterDetector::process`];
    /// this walks the WSAF and detects them at the current time. Returns
    /// the newly detected flows.
    pub fn finalize(&mut self) -> Vec<Detection> {
        let now = self.system.last_ts();
        let keys: Vec<FlowKey> = self.system.wsaf().iter().map(|e| e.key).collect();
        let mut fresh = Vec::new();
        for key in keys {
            if self.detections.contains_key(&key) {
                continue;
            }
            let estimate = match self.metric {
                HhMetric::Packets => self.system.estimate_packets(&key),
                HhMetric::Bytes => self.system.estimate_bytes(&key),
            };
            if estimate >= self.threshold {
                let d = Detection { key, detected_at: now, estimate };
                self.detections.insert(key, d);
                fresh.push(d);
            }
        }
        fresh
    }

    /// Evaluates FP/FN against the true heavy-hitter set (`truth` maps
    /// every flow to its exact metric value; `total_flows` sizes the
    /// negative universe) — the evaluation of paper Fig. 14.
    #[must_use]
    pub fn evaluate(&self, truth: &HashMap<FlowKey, f64>, total_flows: usize) -> DetectionRates {
        self.evaluate_with_margin(truth, total_flows, 0.0)
    }

    /// Like [`HeavyHitterDetector::evaluate`] but excluding the borderline
    /// band `[T·(1−margin), T·(1+margin))` from the accounting — standard
    /// practice for threshold detectors, since flows sitting exactly on
    /// the threshold are classified by estimator noise, not by design.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative or ≥ 1.
    #[must_use]
    pub fn evaluate_with_margin(
        &self,
        truth: &HashMap<FlowKey, f64>,
        total_flows: usize,
        margin: f64,
    ) -> DetectionRates {
        assert!((0.0..1.0).contains(&margin), "margin must be in [0,1)");
        let lo = self.threshold * (1.0 - margin);
        let hi = self.threshold * (1.0 + margin);
        let borderline: HashSet<FlowKey> =
            truth.iter().filter(|&(_, &v)| v >= lo && v < hi).map(|(k, _)| *k).collect();
        let true_hh: HashSet<FlowKey> = truth
            .iter()
            .filter(|&(k, &v)| v >= hi && !borderline.contains(k))
            .map(|(k, _)| *k)
            .collect();
        let detected: HashSet<FlowKey> =
            self.detected_set().into_iter().filter(|k| !borderline.contains(k)).collect();
        detection_rates(&detected, &true_hh, total_flows - borderline.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [9, 8, 7, 6], 11, 22, Protocol::Udp)
    }

    fn detector(metric: HhMetric, threshold: f64) -> HeavyHitterDetector {
        HeavyHitterDetector::new(InstaMeasureConfig::default().small_for_tests(), metric, threshold)
    }

    #[test]
    fn detects_packet_heavy_hitter_once() {
        let mut d = detector(HhMetric::Packets, 5_000.0);
        let mut detections = Vec::new();
        for t in 0..20_000u64 {
            if let Some(det) = d.process(&PacketRecord::new(key(1), 500, t)) {
                detections.push(det);
            }
        }
        assert_eq!(detections.len(), 1, "exactly one detection event");
        let det = detections[0];
        assert_eq!(det.key, key(1));
        assert!(det.estimate >= 5_000.0);
        // Detected within a bounded lag of the true crossing at t=5000
        // (one retention cycle ~100-200 packets at this size).
        assert!(det.detected_at >= 4_000 && det.detected_at <= 9_000, "at {}", det.detected_at);
    }

    #[test]
    fn byte_heavy_hitter_detection() {
        let mut d = detector(HhMetric::Bytes, 1_000_000.0);
        let mut found = None;
        for t in 0..10_000u64 {
            if let Some(det) = d.process(&PacketRecord::new(key(2), 1500, t)) {
                found = Some(det);
                break;
            }
        }
        let det = found.expect("1500B x ~700 packets crosses 1MB");
        assert!(det.estimate >= 1_000_000.0);
    }

    #[test]
    fn small_flows_not_detected() {
        let mut d = detector(HhMetric::Packets, 1_000.0);
        for i in 0..200u32 {
            for t in 0..20u64 {
                assert!(d.process(&PacketRecord::new(key(i), 100, t)).is_none());
            }
        }
        assert!(d.detections().is_empty());
    }

    #[test]
    fn evaluate_computes_rates() {
        let mut d = detector(HhMetric::Packets, 2_000.0);
        // One real heavy hitter, some mice.
        for t in 0..10_000u64 {
            d.process(&PacketRecord::new(key(1), 100, t));
        }
        for i in 2..100u32 {
            for t in 0..5u64 {
                d.process(&PacketRecord::new(key(i), 100, t));
            }
        }
        let mut truth = HashMap::new();
        truth.insert(key(1), 10_000.0);
        for i in 2..100u32 {
            truth.insert(key(i), 5.0);
        }
        let rates = d.evaluate(&truth, 99);
        assert_eq!(rates.false_negative, 0.0, "the elephant is found");
        assert!(rates.false_positive < 0.05, "fp {}", rates.false_positive);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_bad_threshold() {
        let _ = detector(HhMetric::Packets, 0.0);
    }
}
