//! Measurement applications on top of the WSAF.
//!
//! §III-B of the paper argues that the WSAF must keep *samples of mice
//! flows* precisely because applications beyond heavy hitters need them:
//! "it is essential for some applications to have samples of mice flows
//! (e.g., DDoS attack, SuperSpreader and entropy etc.)". This module
//! implements those three applications as pure queries over a WSAF
//! snapshot — no extra per-packet state:
//!
//! * [`flow_size_entropy`] — Shannon entropy of the traffic's flow-size
//!   distribution (a classic anomaly signal: entropy collapses when one
//!   flow dominates, spikes during scans).
//! * [`top_fanout_sources`] — super-spreader detection: sources talking
//!   to unusually many distinct destinations (scans, worms).
//! * [`top_fanin_destinations`] — DDoS victim detection: destinations
//!   contacted by unusually many distinct sources.
//!
//! Fan-out/fan-in are computed over the WSAF's flow *samples*; because the
//! FlowRegulator forwards mice probabilistically, a scanning source's many
//! one-packet flows appear in the table in proportion to their number,
//! which is all a ranking needs.

use std::collections::HashMap;

use instameasure_wsaf::WsafTable;

/// Shannon entropy (bits) of the per-flow packet-share distribution in the
/// WSAF: `H = -Σ pᵢ log₂ pᵢ` with `pᵢ` = flow i's share of accumulated
/// packets. Returns 0 for an empty table.
///
/// Anomaly semantics: a link dominated by one elephant has near-zero
/// entropy; a flat scan pushes it toward `log₂(flows)`.
///
/// # Example
///
/// ```
/// use instameasure_core::apps::flow_size_entropy;
/// use instameasure_wsaf::{WsafConfig, WsafTable};
/// let table = WsafTable::new(WsafConfig::builder().entries_log2(8).build()?);
/// assert_eq!(flow_size_entropy(&table), 0.0);
/// # Ok::<(), instameasure_wsaf::WsafConfigError>(())
/// ```
#[must_use]
pub fn flow_size_entropy(table: &WsafTable) -> f64 {
    let total: f64 = table.iter().map(|e| e.packets).sum();
    if total <= 0.0 {
        return 0.0;
    }
    table
        .iter()
        .filter(|e| e.packets > 0.0)
        .map(|e| {
            let p = e.packets / total;
            -p * p.log2()
        })
        .sum()
}

/// Normalized entropy in `[0, 1]`: [`flow_size_entropy`] divided by
/// `log₂(flows)`. Returns 1.0 for ≤1 flow (a degenerate distribution is
/// "as flat as it can be").
#[must_use]
pub fn normalized_entropy(table: &WsafTable) -> f64 {
    let n = table.len();
    if n <= 1 {
        return 1.0;
    }
    (flow_size_entropy(table) / (n as f64).log2()).clamp(0.0, 1.0)
}

/// A host ranked by its distinct-peer count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanReport {
    /// The host (IPv4, big-endian bytes).
    pub host: [u8; 4],
    /// Number of distinct peers observed in the WSAF sample.
    pub distinct_peers: usize,
    /// Total packets across this host's sampled flows.
    pub packets: u64,
}

fn rank_by_fan(
    table: &WsafTable,
    k: usize,
    host_of: impl Fn(&instameasure_wsaf::FlowEntry) -> [u8; 4],
    peer_of: impl Fn(&instameasure_wsaf::FlowEntry) -> [u8; 4],
) -> Vec<FanReport> {
    let mut fans: HashMap<[u8; 4], (std::collections::HashSet<[u8; 4]>, f64)> = HashMap::new();
    for e in table.iter() {
        let entry = fans.entry(host_of(e)).or_default();
        entry.0.insert(peer_of(e));
        entry.1 += e.packets;
    }
    let mut out: Vec<FanReport> = fans
        .into_iter()
        .map(|(host, (peers, pkts))| FanReport {
            host,
            distinct_peers: peers.len(),
            packets: pkts as u64,
        })
        .collect();
    out.sort_by(|a, b| b.distinct_peers.cmp(&a.distinct_peers).then(b.packets.cmp(&a.packets)));
    out.truncate(k);
    out
}

/// The `k` sources with the largest distinct-destination fan-out —
/// super-spreader candidates.
#[must_use]
pub fn top_fanout_sources(table: &WsafTable, k: usize) -> Vec<FanReport> {
    rank_by_fan(table, k, |e| e.key.src_ip, |e| e.key.dst_ip)
}

/// The `k` destinations with the largest distinct-source fan-in — DDoS
/// victim candidates.
#[must_use]
pub fn top_fanin_destinations(table: &WsafTable, k: usize) -> Vec<FanReport> {
    rank_by_fan(table, k, |e| e.key.dst_ip, |e| e.key.src_ip)
}

/// Aggregated traffic of one IPv4 prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixReport {
    /// Network address of the prefix (host bits zeroed).
    pub network: [u8; 4],
    /// Prefix length used for the aggregation.
    pub prefix_len: u8,
    /// Flows sampled under this prefix.
    pub flows: usize,
    /// Accumulated packet estimate.
    pub packets: f64,
    /// Accumulated byte estimate.
    pub bytes: f64,
}

/// Aggregates the WSAF by source prefix (`prefix_len` in `0..=32`) and
/// returns the `k` heaviest prefixes by packets — subnet-level accounting,
/// the operator view most traffic-engineering actions key on.
///
/// # Panics
///
/// Panics if `prefix_len > 32`.
///
/// # Example
///
/// ```
/// use instameasure_core::apps::top_source_prefixes;
/// use instameasure_wsaf::{WsafConfig, WsafTable};
/// let table = WsafTable::new(WsafConfig::builder().entries_log2(8).build()?);
/// assert!(top_source_prefixes(&table, 24, 5).is_empty());
/// # Ok::<(), instameasure_wsaf::WsafConfigError>(())
/// ```
#[must_use]
pub fn top_source_prefixes(table: &WsafTable, prefix_len: u8, k: usize) -> Vec<PrefixReport> {
    assert!(prefix_len <= 32, "prefix length must be 0..=32");
    let mask: u32 = if prefix_len == 0 { 0 } else { u32::MAX << (32 - u32::from(prefix_len)) };
    let mut agg: HashMap<u32, (usize, f64, f64)> = HashMap::new();
    for e in table.iter() {
        let net = e.key.src_ip_u32() & mask;
        let entry = agg.entry(net).or_default();
        entry.0 += 1;
        entry.1 += e.packets;
        entry.2 += e.bytes;
    }
    let mut out: Vec<PrefixReport> = agg
        .into_iter()
        .map(|(net, (flows, packets, bytes))| PrefixReport {
            network: net.to_be_bytes(),
            prefix_len,
            flows,
            packets,
            bytes,
        })
        .collect();
    out.sort_by(|a, b| b.packets.total_cmp(&a.packets));
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstaMeasure, InstaMeasureConfig};
    use instameasure_packet::{FlowKey, PacketRecord, Protocol};

    fn system() -> InstaMeasure {
        InstaMeasure::new(InstaMeasureConfig::default().small_for_tests())
    }

    fn flow(src: [u8; 4], dst: [u8; 4], port: u16) -> FlowKey {
        FlowKey::new(src, dst, port, 80, Protocol::Tcp)
    }

    /// Feed `pkts` packets of a flow (enough to likely reach the WSAF when
    /// pkts is large).
    fn feed(im: &mut InstaMeasure, key: FlowKey, pkts: u64) {
        for t in 0..pkts {
            im.process(&PacketRecord::new(key, 300, t));
        }
    }

    #[test]
    fn entropy_collapses_under_an_elephant() {
        let mut balanced = system();
        for i in 0..20u8 {
            feed(&mut balanced, flow([10, 0, 0, i], [20, 0, 0, i], 1000), 2_000);
        }
        let mut skewed = system();
        feed(&mut skewed, flow([10, 0, 0, 1], [20, 0, 0, 1], 1000), 200_000);
        for i in 2..6u8 {
            feed(&mut skewed, flow([10, 0, 0, i], [20, 0, 0, i], 1000), 500);
        }
        let h_bal = normalized_entropy(balanced.wsaf());
        let h_skew = normalized_entropy(skewed.wsaf());
        assert!(h_bal > 0.9, "balanced entropy {h_bal}");
        assert!(h_skew < 0.5, "skewed entropy {h_skew}");
    }

    #[test]
    fn entropy_of_empty_and_single() {
        let im = system();
        assert_eq!(flow_size_entropy(im.wsaf()), 0.0);
        assert_eq!(normalized_entropy(im.wsaf()), 1.0);
    }

    #[test]
    fn super_spreader_tops_fanout() {
        let mut im = system();
        // Background: normal hosts with 2-3 peers each.
        for i in 0..30u8 {
            for d in 0..3u8 {
                feed(&mut im, flow([10, 0, 1, i], [20, 0, d, i], 2000), 400);
            }
        }
        // The scanner: one source, 150 destinations, enough packets per
        // destination that a good fraction of the flows reach the WSAF.
        for d in 0..150u8 {
            feed(&mut im, flow([66, 6, 6, 6], [30, 0, 0, d], 3000), 300);
            feed(&mut im, flow([66, 6, 6, 6], [30, 0, 1, d], 3001), 300);
        }
        let top = top_fanout_sources(im.wsaf(), 3);
        assert_eq!(top[0].host, [66, 6, 6, 6], "scanner must rank first: {top:?}");
        assert!(top[0].distinct_peers > 3 * top[1].distinct_peers.max(1));
    }

    #[test]
    fn ddos_victim_tops_fanin() {
        let mut im = system();
        for i in 0..30u8 {
            feed(&mut im, flow([10, 0, 2, i], [20, 0, 2, i], 2000), 400);
        }
        // 200 bots hammering one victim.
        for b in 0..200u8 {
            feed(&mut im, flow([40, 0, 0, b], [99, 9, 9, 9], 4000), 300);
        }
        let top = top_fanin_destinations(im.wsaf(), 3);
        assert_eq!(top[0].host, [99, 9, 9, 9], "victim must rank first: {top:?}");
        assert!(top[0].distinct_peers > 50);
    }

    #[test]
    fn fan_reports_are_sorted_and_truncated() {
        let mut im = system();
        for i in 0..10u8 {
            for d in 0..=i {
                feed(&mut im, flow([10, 9, 0, i], [20, 9, 0, d], 5000), 600);
            }
        }
        let top = top_fanout_sources(im.wsaf(), 4);
        assert_eq!(top.len(), 4);
        for pair in top.windows(2) {
            assert!(pair[0].distinct_peers >= pair[1].distinct_peers);
        }
    }

    #[test]
    fn prefix_aggregation_groups_by_network() {
        let mut im = system();
        // Two /24s: 10.1.1.0/24 heavy, 10.2.2.0/24 light.
        for h in 0..10u8 {
            feed(&mut im, flow([10, 1, 1, h], [99, 0, 0, h], 6000), 2_000);
        }
        feed(&mut im, flow([10, 2, 2, 1], [99, 0, 0, 99], 6001), 500);
        let top = top_source_prefixes(im.wsaf(), 24, 2);
        assert_eq!(top[0].network, [10, 1, 1, 0]);
        assert_eq!(top[0].prefix_len, 24);
        assert!(top[0].flows >= 8, "most /24 members sampled: {}", top[0].flows);
        assert!(top[0].packets > top[1].packets * 5.0);
    }

    #[test]
    fn prefix_zero_aggregates_everything() {
        let mut im = system();
        feed(&mut im, flow([1, 1, 1, 1], [2, 2, 2, 2], 6002), 1_000);
        feed(&mut im, flow([200, 1, 1, 1], [2, 2, 2, 2], 6003), 1_000);
        let all = top_source_prefixes(im.wsaf(), 0, 10);
        assert_eq!(all.len(), 1, "/0 collapses to one bucket");
        assert_eq!(all[0].network, [0, 0, 0, 0]);
        assert_eq!(all[0].flows, im.wsaf().len());
    }

    #[test]
    fn prefix_32_is_per_host() {
        let mut im = system();
        feed(&mut im, flow([8, 8, 8, 8], [2, 2, 2, 2], 6004), 1_000);
        let hosts = top_source_prefixes(im.wsaf(), 32, 10);
        assert_eq!(hosts[0].network, [8, 8, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "prefix length must be 0..=32")]
    fn prefix_rejects_bad_length() {
        let im = system();
        let _ = top_source_prefixes(im.wsaf(), 33, 1);
    }
}
