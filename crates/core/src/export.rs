//! NetFlow-style flow-record export.
//!
//! A deployed InstaMeasure box does what a NetFlow probe does at the end
//! of a flow's life: when a WSAF entry expires it is drained as a
//! [`FlowRecord`] and shipped to storage/analysis. This module provides
//! the drain step plus a compact, versioned binary codec for record
//! batches (45 bytes/record), so long-horizon deployments (the paper's
//! 113-hour run) can run with a bounded WSAF while retaining full flow
//! history offline.

use core::fmt;

use instameasure_packet::FlowKey;
use instameasure_wsaf::{FlowEntry, WsafTable};

/// Magic prefix of an encoded record batch (`IMFR`).
pub const MAGIC: [u8; 4] = *b"IMFR";
/// Current format version.
pub const VERSION: u16 = 1;
/// Encoded size of one record in bytes.
pub const RECORD_BYTES: usize = 13 + 8 + 8 + 8 + 8;

/// A terminated (or snapshotted) flow: the export unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// The 5-tuple.
    pub key: FlowKey,
    /// Accumulated packet estimate, rounded.
    pub packets: u64,
    /// Accumulated byte estimate, rounded.
    pub bytes: u64,
    /// First accumulation timestamp (nanoseconds).
    pub first_ts: u64,
    /// Last accumulation timestamp (nanoseconds).
    pub last_ts: u64,
}

impl FlowRecord {
    /// Converts a WSAF entry into an export record.
    #[must_use]
    pub fn from_entry(e: &FlowEntry) -> Self {
        FlowRecord {
            key: e.key,
            packets: e.packets.round().max(0.0) as u64,
            bytes: e.bytes.round().max(0.0) as u64,
            first_ts: e.first_ts,
            last_ts: e.last_ts,
        }
    }

    /// Duration the flow was active (last − first accumulation).
    #[must_use]
    pub fn duration_nanos(&self) -> u64 {
        self.last_ts.saturating_sub(self.first_ts)
    }
}

/// Errors from decoding a record batch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExportError {
    /// The buffer does not start with the `IMFR` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// The buffer is shorter than its header declares.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::BadMagic => write!(f, "missing IMFR magic"),
            ExportError::BadVersion(v) => write!(f, "unsupported record format version {v}"),
            ExportError::Truncated { needed, available } => {
                write!(f, "truncated record batch: need {needed} bytes, have {available}")
            }
        }
    }
}

impl std::error::Error for ExportError {}

/// Removes every WSAF entry idle longer than the table's expiry at time
/// `now` and returns them as export records — the probe's periodic
/// flow-termination pass.
#[must_use]
pub fn drain_expired(table: &mut WsafTable, now: u64) -> Vec<FlowRecord> {
    let expiry = table.config().expiry_nanos();
    let expired: Vec<FlowKey> =
        table.iter().filter(|e| now.saturating_sub(e.last_ts) > expiry).map(|e| e.key).collect();
    expired.iter().filter_map(|k| table.remove(k)).map(|e| FlowRecord::from_entry(&e)).collect()
}

/// Snapshots *all* live entries as records without removing them (end of
/// a measurement window).
#[must_use]
pub fn snapshot(table: &WsafTable) -> Vec<FlowRecord> {
    table.iter().map(FlowRecord::from_entry).collect()
}

/// Encodes a record batch: `IMFR ‖ version ‖ count ‖ records`.
///
/// # Example
///
/// ```
/// use instameasure_core::export::{decode_records, encode_records};
/// let bytes = encode_records(&[]);
/// assert_eq!(decode_records(&bytes).unwrap().len(), 0);
/// ```
#[must_use]
pub fn encode_records(records: &[FlowRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + records.len() * RECORD_BYTES);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.key.to_bytes());
        out.extend_from_slice(&r.packets.to_le_bytes());
        out.extend_from_slice(&r.bytes.to_le_bytes());
        out.extend_from_slice(&r.first_ts.to_le_bytes());
        out.extend_from_slice(&r.last_ts.to_le_bytes());
    }
    out
}

/// Decodes a record batch produced by [`encode_records`].
///
/// # Errors
///
/// Returns [`ExportError`] on a bad magic, unknown version, or truncation.
pub fn decode_records(buf: &[u8]) -> Result<Vec<FlowRecord>, ExportError> {
    if buf.len() < 10 {
        return Err(ExportError::Truncated { needed: 10, available: buf.len() });
    }
    if buf[0..4] != MAGIC {
        return Err(ExportError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(ExportError::BadVersion(version));
    }
    let count = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]) as usize;
    let needed = 10 + count * RECORD_BYTES;
    if buf.len() < needed {
        return Err(ExportError::Truncated { needed, available: buf.len() });
    }
    let mut records = Vec::with_capacity(count);
    let mut off = 10;
    for _ in 0..count {
        let mut key_bytes = [0u8; 13];
        key_bytes.copy_from_slice(&buf[off..off + 13]);
        let read_u64 =
            |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().expect("bounds checked above"));
        records.push(FlowRecord {
            key: FlowKey::from_bytes(key_bytes),
            packets: read_u64(off + 13),
            bytes: read_u64(off + 21),
            first_ts: read_u64(off + 29),
            last_ts: read_u64(off + 37),
        });
        off += RECORD_BYTES;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;
    use instameasure_wsaf::WsafConfig;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [1, 1, 1, 1], 3, 4, Protocol::Udp)
    }

    fn record(i: u32) -> FlowRecord {
        FlowRecord {
            key: key(i),
            packets: u64::from(i) * 10,
            bytes: u64::from(i) * 1000,
            first_ts: 5,
            last_ts: 500 + u64::from(i),
        }
    }

    #[test]
    fn codec_roundtrip() {
        let records: Vec<FlowRecord> = (0..100).map(record).collect();
        let bytes = encode_records(&records);
        assert_eq!(bytes.len(), 10 + 100 * RECORD_BYTES);
        assert_eq!(decode_records(&bytes).unwrap(), records);
    }

    #[test]
    fn codec_rejects_corruption() {
        let mut bytes = encode_records(&[record(1)]);
        assert_eq!(
            decode_records(&bytes[..5]),
            Err(ExportError::Truncated { needed: 10, available: 5 })
        );
        let short = &bytes[..bytes.len() - 1];
        assert!(matches!(decode_records(short), Err(ExportError::Truncated { .. })));
        bytes[0] = b'X';
        assert_eq!(decode_records(&bytes), Err(ExportError::BadMagic));
        let mut v2 = encode_records(&[record(1)]);
        v2[4] = 9;
        assert_eq!(decode_records(&v2), Err(ExportError::BadVersion(9)));
    }

    #[test]
    fn drain_expired_removes_and_returns() {
        let mut table = WsafTable::new(
            WsafConfig::builder().entries_log2(8).expiry_nanos(1_000).build().unwrap(),
        );
        table.accumulate(&key(1), 10.0, 100.0, 0); // will expire
        table.accumulate(&key(2), 20.0, 200.0, 5_000); // fresh
        let drained = drain_expired(&mut table, 5_500);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].key, key(1));
        assert_eq!(drained[0].packets, 10);
        assert_eq!(table.len(), 1);
        assert!(table.get(&key(2)).is_some());
        // Second drain finds nothing.
        assert!(drain_expired(&mut table, 5_500).is_empty());
    }

    #[test]
    fn snapshot_preserves_table() {
        let mut table = WsafTable::new(WsafConfig::builder().entries_log2(8).build().unwrap());
        table.accumulate(&key(1), 1.5, 10.0, 0);
        table.accumulate(&key(2), 2.4, 20.0, 0);
        let snap = snapshot(&table);
        assert_eq!(snap.len(), 2);
        assert_eq!(table.len(), 2, "snapshot must not drain");
        // Rounding.
        let pkts: Vec<u64> = {
            let mut v: Vec<u64> = snap.iter().map(|r| r.packets).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(pkts, vec![2, 2]);
    }

    #[test]
    fn record_duration() {
        let r = record(3);
        assert_eq!(r.duration_nanos(), 498);
    }

    #[test]
    fn full_pipeline_export() {
        use crate::{InstaMeasure, InstaMeasureConfig};
        use instameasure_packet::PacketRecord;
        let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for t in 0..50_000u64 {
            im.process(&PacketRecord::new(key(7), 800, t));
        }
        let records = snapshot(im.wsaf());
        assert_eq!(records.len(), 1);
        let encoded = encode_records(&records);
        let back = decode_records(&encoded).unwrap();
        assert_eq!(back[0].key, key(7));
        assert!(back[0].packets > 40_000);
    }
}
