//! Detection-latency comparison of the three decoding disciplines (§II,
//! Fig. 9b).
//!
//! * **Packet-arrival-based** — count exactly and check on *every*
//!   packet. Infeasible at line rate (it needs a full per-flow table at
//!   pps), but it is the timing ideal the paper uses "as ground truth and
//!   a baseline": detection happens on the exact packet that crosses the
//!   threshold.
//! * **Saturation-based** — InstaMeasure: detection can only happen when a
//!   saturation updates the WSAF, so it lags the ideal by at most one
//!   retention cycle (the paper's <10 ms bound, shrinking as the attack
//!   rate grows).
//! * **Delegation-based** — the conventional design: sketches are shipped
//!   to a remote collector every epoch; detection happens at the collector
//!   after the epoch boundary plus the network delay.

use instameasure_packet::{FlowKey, PacketRecord};

use crate::{InstaMeasure, InstaMeasureConfig};

/// Parameters of the delegation (remote collector) discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelegationParams {
    /// Collection epoch (paper-scale frameworks report tens of ms; default
    /// 20 ms).
    pub epoch_nanos: u64,
    /// One-way network delay to the collector (default 10 ms).
    pub network_delay_nanos: u64,
}

impl Default for DelegationParams {
    fn default() -> Self {
        DelegationParams { epoch_nanos: 20_000_000, network_delay_nanos: 10_000_000 }
    }
}

/// Detection times (trace nanoseconds) of one target flow under all three
/// disciplines.
///
/// The *packet-arrival-based* discipline counts exactly and checks on every
/// packet, so by definition it detects at the true crossing — the paper
/// uses it "as ground truth and a baseline" (§II). [`Self::packet_arrival`]
/// therefore equals [`Self::truth_crossing`] whenever the flow crosses;
/// [`Self::estimate_crossing`] additionally records when the *sketch
/// estimate* (decoded every packet) crossed, which can lead or lag the
/// truth by estimator noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyComparison {
    /// When the flow's *true* count crossed the threshold.
    pub truth_crossing: Option<u64>,
    /// Packet-arrival-based detection time (exact counting — equals the
    /// true crossing).
    pub packet_arrival: Option<u64>,
    /// When the per-packet *sketch estimate* crossed (informational).
    pub estimate_crossing: Option<u64>,
    /// Saturation-based (InstaMeasure) detection time.
    pub saturation: Option<u64>,
    /// Delegation-based detection time.
    pub delegation: Option<u64>,
}

impl LatencyComparison {
    /// Saturation-based delay relative to the packet-arrival ideal
    /// (clamped at zero: estimator overshoot can fire a saturation check
    /// slightly before the true crossing).
    #[must_use]
    pub fn saturation_delay_nanos(&self) -> Option<u64> {
        Some(self.saturation?.saturating_sub(self.packet_arrival?))
    }

    /// Delegation-based delay relative to the packet-arrival ideal.
    #[must_use]
    pub fn delegation_delay_nanos(&self) -> Option<u64> {
        Some(self.delegation?.saturating_sub(self.packet_arrival?))
    }
}

/// Replays `records` and measures when `target`'s packet count crosses
/// `threshold_pkts` under each discipline.
///
/// All three disciplines run over the *same* InstaMeasure estimates (same
/// sketch randomness), so the comparison isolates pure decode timing:
/// packet-arrival queries every packet, saturation queries only on WSAF
/// updates, delegation checks at epoch boundaries and adds the network
/// delay.
#[must_use]
pub fn compare_detection_latency(
    records: &[PacketRecord],
    target: &FlowKey,
    threshold_pkts: f64,
    cfg: InstaMeasureConfig,
    delegation: DelegationParams,
) -> LatencyComparison {
    let mut im = InstaMeasure::new(cfg);
    let mut truth_count = 0u64;
    let mut truth_crossing = None;
    let mut estimate_crossing = None;
    let mut saturation = None;
    let mut delegation_at = None;

    // Delegation bookkeeping: the estimate snapshot at the last epoch
    // boundary that has *arrived* at the collector.
    let mut next_epoch = delegation.epoch_nanos;

    for pkt in records {
        // Epoch boundaries strictly before this packet: the collector sees
        // the accumulated estimate as of the boundary.
        while delegation_at.is_none() && pkt.ts_nanos >= next_epoch {
            let snapshot = im.estimate_packets(target);
            if snapshot >= threshold_pkts {
                delegation_at = Some(next_epoch + delegation.network_delay_nanos);
            }
            next_epoch += delegation.epoch_nanos;
        }

        let update = im.process(pkt);

        if pkt.key == *target {
            truth_count += 1;
            // Packet-arrival-based = exact counting on every packet.
            if truth_crossing.is_none() && truth_count as f64 >= threshold_pkts {
                truth_crossing = Some(pkt.ts_nanos);
            }
            // The sketch estimate decoded on every packet (informational).
            if estimate_crossing.is_none() && im.estimate_packets(target) >= threshold_pkts {
                estimate_crossing = Some(pkt.ts_nanos);
            }
        }

        // Saturation-based: check only when the WSAF changed for target.
        if saturation.is_none() {
            if let Some(u) = update {
                if u.key == *target && im.estimate_packets(target) >= threshold_pkts {
                    saturation = Some(pkt.ts_nanos);
                }
            }
        }
    }

    // Drain remaining epochs after the trace for delegation.
    if delegation_at.is_none() && im.estimate_packets(target) >= threshold_pkts {
        delegation_at = Some(next_epoch + delegation.network_delay_nanos);
    }

    LatencyComparison {
        truth_crossing,
        packet_arrival: truth_crossing,
        estimate_crossing,
        saturation,
        delegation: delegation_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn target() -> FlowKey {
        FlowKey::new([66, 66, 66, 66], [1, 1, 1, 1], 666, 80, Protocol::Udp)
    }

    /// Constant-rate attack at `rate_pps` for `secs` seconds.
    fn attack(rate_pps: u64, secs: f64) -> Vec<PacketRecord> {
        let gap = 1_000_000_000 / rate_pps;
        let n = (rate_pps as f64 * secs) as u64;
        (0..n).map(|i| PacketRecord::new(target(), 64, i * gap)).collect()
    }

    fn cfg() -> InstaMeasureConfig {
        InstaMeasureConfig::default().small_for_tests()
    }

    #[test]
    fn ordering_packet_arrival_then_saturation_then_delegation() {
        let records = attack(100_000, 0.5);
        let cmp = compare_detection_latency(
            &records,
            &target(),
            1_000.0,
            cfg(),
            DelegationParams::default(),
        );
        let pa = cmp.packet_arrival.expect("ideal detects");
        assert_eq!(cmp.packet_arrival, cmp.truth_crossing, "exact counting = truth");
        let sat = cmp.saturation.expect("saturation detects");
        let del = cmp.delegation.expect("delegation detects");
        // Estimator overshoot may fire the saturation check marginally
        // early; it must never *lag* by more than a retention cycle.
        assert!(sat + 1_000_000 >= pa, "sat {sat} far before pa {pa}");
        assert!(sat < del, "sat {sat} < del {del} (collector round-trip dominates)");
        // The paper's claim: saturation lag is bounded by ~one retention
        // cycle; at 100 kpps a ~100-packet cycle is ~1 ms.
        let lag = cmp.saturation_delay_nanos().unwrap();
        assert!(lag < 5_000_000, "saturation lag {} ns", lag);
        // Delegation pays at least the network delay.
        assert!(cmp.delegation_delay_nanos().unwrap() >= 10_000_000);
    }

    #[test]
    fn faster_attack_detected_sooner() {
        // Fig. 9b: detection delay shrinks as the attack rate grows.
        let slow = compare_detection_latency(
            &attack(10_000, 2.0),
            &target(),
            1_000.0,
            cfg(),
            DelegationParams::default(),
        );
        let fast = compare_detection_latency(
            &attack(130_000, 2.0),
            &target(),
            1_000.0,
            cfg(),
            DelegationParams::default(),
        );
        let slow_delay = slow.saturation.unwrap() - slow.truth_crossing.unwrap();
        let fast_delay = fast.saturation.unwrap() - fast.truth_crossing.unwrap();
        assert!(fast_delay < slow_delay, "fast {fast_delay} ns should beat slow {slow_delay} ns");
    }

    #[test]
    fn below_threshold_never_detects() {
        let records = attack(10_000, 0.05); // 500 packets total
        let cmp = compare_detection_latency(
            &records,
            &target(),
            10_000.0,
            cfg(),
            DelegationParams::default(),
        );
        assert_eq!(cmp.truth_crossing, None);
        assert_eq!(cmp.packet_arrival, None);
        assert_eq!(cmp.saturation, None);
        assert_eq!(cmp.delegation, None);
    }

    #[test]
    fn empty_trace() {
        let cmp =
            compare_detection_latency(&[], &target(), 1.0, cfg(), DelegationParams::default());
        assert_eq!(cmp.packet_arrival, None);
        assert_eq!(cmp.saturation_delay_nanos(), None);
    }
}
