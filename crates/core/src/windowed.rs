//! Windowed measurement: periodic Top-K reports over a rotating window.
//!
//! The paper's Top-K evaluation (Figs. 10/11) runs "with updates done
//! every 10 minutes": the measurement state rotates each epoch and a
//! report (Top-K by packets and by bytes, totals, entropy) is emitted per
//! window. This module implements that operational mode: a
//! [`WindowedMeasurement`] wraps an [`InstaMeasure`] instance, detects
//! epoch boundaries from packet timestamps, and yields a
//! [`WindowReport`] per closed window while exporting the window's flow
//! records.

use instameasure_packet::{FlowKey, PacketRecord};
use instameasure_telemetry::{Instrumented, Snapshot};

use crate::apps::normalized_entropy;
use crate::export::{snapshot, FlowRecord};
use crate::{InstaMeasure, InstaMeasureConfig};

/// Summary of one closed measurement window.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Window start (inclusive, nanoseconds).
    pub start_nanos: u64,
    /// Window end (exclusive).
    pub end_nanos: u64,
    /// Packets processed in the window.
    pub packets: u64,
    /// WSAF updates released in the window.
    pub wsaf_updates: u64,
    /// Top flows by packet estimate, descending.
    pub top_by_packets: Vec<(FlowKey, f64)>,
    /// Top flows by byte estimate, descending.
    pub top_by_bytes: Vec<(FlowKey, f64)>,
    /// Normalized flow-size entropy of the window's WSAF.
    pub entropy: f64,
    /// All flow records of the window (the export stream).
    pub records: Vec<FlowRecord>,
}

/// An InstaMeasure pipeline that rotates every `window_nanos` and emits
/// per-window reports (the paper's 10-minute Top-K update mode).
///
/// # Example
///
/// ```
/// use instameasure_core::windowed::WindowedMeasurement;
/// use instameasure_core::InstaMeasureConfig;
/// use instameasure_packet::{FlowKey, PacketRecord, Protocol};
///
/// let cfg = InstaMeasureConfig::default().small_for_tests();
/// let mut wm = WindowedMeasurement::new(cfg, 1_000_000_000, 5); // 1 s windows, top-5
/// let key = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 80, 80, Protocol::Tcp);
/// let mut reports = Vec::new();
/// for t in 0..3_000u64 {
///     // one packet per millisecond for 3 seconds => 2 closed windows
///     if let Some(r) = wm.process(&PacketRecord::new(key, 100, t * 1_000_000)) {
///         reports.push(r);
///     }
/// }
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports[0].packets, 1_000);
/// ```
#[derive(Debug)]
pub struct WindowedMeasurement {
    system: InstaMeasure,
    cfg: InstaMeasureConfig,
    window_nanos: u64,
    top_k: usize,
    window_start: u64,
    window_packets: u64,
    updates_at_window_start: u64,
    started: bool,
    closed_telemetry: Snapshot,
}

impl WindowedMeasurement {
    /// Creates a windowed pipeline with the given epoch length and Top-K
    /// report depth.
    ///
    /// # Panics
    ///
    /// Panics if `window_nanos` is zero.
    #[must_use]
    pub fn new(cfg: InstaMeasureConfig, window_nanos: u64, top_k: usize) -> Self {
        assert!(window_nanos > 0, "window must be positive");
        WindowedMeasurement {
            system: InstaMeasure::new(cfg),
            cfg,
            window_nanos,
            top_k,
            window_start: 0,
            window_packets: 0,
            updates_at_window_start: 0,
            started: false,
            closed_telemetry: Snapshot::new(),
        }
    }

    /// The active (not yet closed) window's system state.
    #[must_use]
    pub fn current(&self) -> &InstaMeasure {
        &self.system
    }

    /// Feeds a packet; returns the closed window's report when this packet
    /// is the first beyond a window boundary.
    ///
    /// Packets are assumed time-ordered (a capture stream); a stale
    /// timestamp is processed into the current window.
    pub fn process(&mut self, pkt: &PacketRecord) -> Option<WindowReport> {
        if !self.started {
            self.started = true;
            self.window_start = pkt.ts_nanos - pkt.ts_nanos % self.window_nanos;
        }
        let report = if pkt.ts_nanos >= self.window_start + self.window_nanos {
            Some(self.rotate(self.window_start + self.window_nanos))
        } else {
            None
        };
        self.system.process(pkt);
        self.window_packets += 1;
        report
    }

    /// Closes the current window unconditionally (end of capture) and
    /// returns its report.
    pub fn finish(&mut self) -> WindowReport {
        let end = self.system.last_ts().max(self.window_start) + 1;
        self.rotate(end)
    }

    fn rotate(&mut self, end: u64) -> WindowReport {
        let report = WindowReport {
            start_nanos: self.window_start,
            end_nanos: end,
            packets: self.window_packets,
            wsaf_updates: self.system.filter_stats().updates - self.updates_at_window_start,
            top_by_packets: self
                .system
                .wsaf()
                .top_k_by_packets(self.top_k)
                .into_iter()
                .map(|e| (e.key, e.packets))
                .collect(),
            top_by_bytes: self
                .system
                .wsaf()
                .top_k_by_bytes(self.top_k)
                .into_iter()
                .map(|e| (e.key, e.bytes))
                .collect(),
            entropy: normalized_entropy(self.system.wsaf()),
            records: snapshot(self.system.wsaf()),
        };
        // Fresh state for the next window (the paper restarts counting
        // each epoch; long-lived flows re-enter through the regulator).
        // Fold the outgoing window's counters into the run-level totals
        // first — rotation must not lose telemetry.
        self.closed_telemetry.merge(&self.system.telemetry());
        self.system = InstaMeasure::new(self.cfg);
        self.window_start = end;
        self.window_packets = 0;
        self.updates_at_window_start = 0;
        report
    }
}

impl Instrumented for WindowedMeasurement {
    /// Run-level totals: every closed window's counters merged with the
    /// active window's. Gauges keep the Snapshot merge semantics (maximum
    /// across windows), except `regulator.regulation_rate`, which is
    /// recomputed from the merged counters so it stays the whole-run ratio.
    fn telemetry(&self) -> Snapshot {
        let mut snap = self.closed_telemetry.clone();
        snap.merge(&self.system.telemetry());
        let packets = snap.counter("regulator.packets").unwrap_or(0);
        if packets > 0 {
            let updates = snap.counter("regulator.updates").unwrap_or(0);
            snap.set_gauge("regulator.regulation_rate", updates as f64 / packets as f64);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [7, 7, 7, 7], 2, 3, Protocol::Udp)
    }

    fn cfg() -> InstaMeasureConfig {
        InstaMeasureConfig::default().small_for_tests()
    }

    #[test]
    fn windows_close_on_boundaries() {
        let mut wm = WindowedMeasurement::new(cfg(), 1_000, 3);
        let mut reports = Vec::new();
        for t in 0..10_000u64 {
            if let Some(r) = wm.process(&PacketRecord::new(key(1), 100, t)) {
                reports.push(r);
            }
        }
        assert_eq!(reports.len(), 9, "10k ns at 1k windows => 9 closed");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.start_nanos, i as u64 * 1_000);
            assert_eq!(r.end_nanos, (i as u64 + 1) * 1_000);
            assert_eq!(r.packets, 1_000);
        }
    }

    #[test]
    fn top_k_per_window_tracks_window_traffic() {
        let mut wm = WindowedMeasurement::new(cfg(), 1_000_000, 1);
        // Window 0: flow 1 dominates. Window 1: flow 2 dominates.
        for t in 0..500_000u64 {
            wm.process(&PacketRecord::new(key(1), 100, t));
        }
        let mut first = None;
        for t in 1_000_000..1_500_000u64 {
            if let Some(r) = wm.process(&PacketRecord::new(key(2), 100, t)) {
                first = Some(r);
            }
        }
        let last = wm.finish();
        assert_eq!(first.unwrap().top_by_packets[0].0, key(1));
        assert_eq!(last.top_by_packets[0].0, key(2), "state rotated between windows");
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut wm = WindowedMeasurement::new(cfg(), 1_000_000_000, 2);
        for t in 0..100u64 {
            wm.process(&PacketRecord::new(key(3), 100, t));
        }
        let r = wm.finish();
        assert_eq!(r.packets, 100);
        assert!(r.entropy >= 0.0 && r.entropy <= 1.0);
    }

    #[test]
    fn window_updates_counter_is_per_window() {
        let mut wm = WindowedMeasurement::new(cfg(), 1_000, 2);
        let mut total_updates = 0;
        let mut reports = 0;
        for t in 0..50_000u64 {
            if let Some(r) = wm.process(&PacketRecord::new(key(4), 100, t)) {
                total_updates += r.wsaf_updates;
                reports += 1;
            }
        }
        let tail = wm.finish();
        total_updates += tail.wsaf_updates;
        assert!(reports > 10);
        assert!(total_updates > 0, "an elephant must release updates");
        assert!(total_updates < 50_000 / 10, "regulation still effective per window");
    }

    #[test]
    fn telemetry_survives_rotation() {
        let mut wm = WindowedMeasurement::new(cfg(), 1_000, 2);
        for t in 0..10_000u64 {
            wm.process(&PacketRecord::new(key(6), 100, t));
        }
        wm.finish();
        // Rotation discards per-window systems; the run-level snapshot must
        // still account for every packet ever processed.
        let snap = wm.telemetry();
        assert_eq!(snap.counter("regulator.packets"), Some(10_000));
        let rate = snap.gauge("regulator.regulation_rate").unwrap();
        let by_hand = snap.counter("regulator.updates").unwrap() as f64 / 10_000.0;
        assert!((rate - by_hand).abs() < 1e-12, "rate {rate} vs counters {by_hand}");
    }

    #[test]
    fn first_packet_anchors_the_window_grid() {
        let mut wm = WindowedMeasurement::new(cfg(), 1_000, 1);
        // Start mid-grid: first packet at t=2500 lands in window [2000,3000).
        let r = wm.process(&PacketRecord::new(key(5), 100, 2_500));
        assert!(r.is_none());
        let r = wm.process(&PacketRecord::new(key(5), 100, 3_100)).expect("boundary crossed");
        assert_eq!(r.start_nanos, 2_000);
        assert_eq!(r.end_nanos, 3_000);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let _ = WindowedMeasurement::new(cfg(), 0, 1);
    }
}
