//! Simulation of the conventional *delegation-based* measurement
//! architecture — the design InstaMeasure replaces.
//!
//! In the conventional design (§I–II) the device keeps only a sketch; each
//! epoch the saturating sketch plus the flow-ID log is shipped over the
//! network to a central collector, which decodes offline. That costs
//! (a) detection latency — nothing is known until the next epoch arrives
//! at the collector — and (b) network bandwidth, which the paper's intro
//! singles out ("remote decoding undoubtedly increases the network
//! congestion"). This module prices both so benches can put numbers next
//! to InstaMeasure's in-switch decoding.

use instameasure_baselines::{CsmConfig, CsmSketch, PerFlowCounter};
use instameasure_packet::{FlowKey, PacketRecord};
use std::collections::HashSet;

/// The network path between device and collector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectorLink {
    /// One-way propagation delay (default 10 ms).
    pub delay_nanos: u64,
    /// Usable bandwidth toward the collector in bytes/second (default
    /// 125 MB/s ≈ 1 Gbps).
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for CollectorLink {
    fn default() -> Self {
        CollectorLink { delay_nanos: 10_000_000, bandwidth_bytes_per_sec: 125e6 }
    }
}

impl CollectorLink {
    /// When a transfer of `bytes` starting at `t` is fully received.
    #[must_use]
    pub fn arrival_nanos(&self, t: u64, bytes: usize) -> u64 {
        let serialize = (bytes as f64 / self.bandwidth_bytes_per_sec * 1e9) as u64;
        t + serialize + self.delay_nanos
    }
}

/// One epoch's shipment from device to collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochShipment {
    /// Epoch end on the device clock.
    pub epoch_end: u64,
    /// Bytes shipped (sketch memory + new flow IDs).
    pub bytes: usize,
    /// When the collector has it all.
    pub arrival: u64,
    /// New flow IDs first seen this epoch.
    pub new_flows: usize,
}

/// Aggregate cost of a delegation run.
#[derive(Debug, Clone, Default)]
pub struct DelegationReport {
    /// One entry per epoch.
    pub shipments: Vec<EpochShipment>,
    /// When the collector first saw the target flow above the threshold
    /// (if a detection query was armed).
    pub detection: Option<u64>,
}

impl DelegationReport {
    /// Total bytes shipped to the collector.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.shipments.iter().map(|s| s.bytes).sum()
    }

    /// Mean bandwidth consumed across the run, bytes/second of device
    /// time (0 for an empty run).
    #[must_use]
    pub fn mean_bandwidth(&self) -> f64 {
        match (self.shipments.first(), self.shipments.last()) {
            (Some(first), Some(last)) if last.epoch_end > 0 => {
                let span = last.epoch_end - first.epoch_end + 1;
                self.total_bytes() as f64 * 1e9 / span as f64
            }
            _ => 0.0,
        }
    }
}

/// The device half of a delegation deployment: a CSM sketch plus the
/// flow-ID log, shipped every `epoch_nanos`.
#[derive(Debug)]
pub struct DelegatedDevice {
    sketch: CsmSketch,
    link: CollectorLink,
    epoch_nanos: u64,
    next_epoch: u64,
    known_flows: HashSet<FlowKey>,
    new_this_epoch: usize,
    report: DelegationReport,
    target: Option<(FlowKey, f64)>,
}

impl DelegatedDevice {
    /// Creates a device with the given sketch config, link and epoch.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_nanos` is zero.
    #[must_use]
    pub fn new(sketch: CsmConfig, link: CollectorLink, epoch_nanos: u64) -> Self {
        assert!(epoch_nanos > 0, "epoch must be positive");
        DelegatedDevice {
            sketch: CsmSketch::new(sketch),
            link,
            epoch_nanos,
            next_epoch: epoch_nanos,
            known_flows: HashSet::new(),
            new_this_epoch: 0,
            report: DelegationReport::default(),
            target: None,
        }
    }

    /// Arms a heavy-hitter detection query: the collector flags `key`
    /// when its decoded estimate reaches `threshold_pkts`.
    pub fn arm_detection(&mut self, key: FlowKey, threshold_pkts: f64) {
        self.target = Some((key, threshold_pkts));
    }

    /// Feeds one packet, shipping any elapsed epochs first.
    pub fn process(&mut self, pkt: &PacketRecord) {
        while pkt.ts_nanos >= self.next_epoch {
            self.ship(self.next_epoch);
            self.next_epoch += self.epoch_nanos;
        }
        if self.known_flows.insert(pkt.key) {
            self.new_this_epoch += 1;
        }
        self.sketch.record(pkt);
    }

    /// Ships the final partial epoch and returns the cost report.
    #[must_use]
    pub fn finish(mut self) -> DelegationReport {
        let end = self.next_epoch - self.epoch_nanos + 1;
        self.ship(end.max(1));
        self.report
    }

    fn ship(&mut self, epoch_end: u64) {
        // The sketch memory plus the epoch's new flow IDs (13 B each) —
        // what the conventional design must move every epoch.
        let bytes = self.sketch.memory_bytes() + self.new_this_epoch * 13;
        let arrival = self.link.arrival_nanos(epoch_end, bytes);
        self.report.shipments.push(EpochShipment {
            epoch_end,
            bytes,
            arrival,
            new_flows: self.new_this_epoch,
        });
        self.new_this_epoch = 0;
        // Collector-side decode happens at arrival.
        if self.report.detection.is_none() {
            if let Some((key, threshold)) = self.target {
                if self.sketch.estimate_packets(&key) >= threshold {
                    self.report.detection = Some(arrival);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [6, 6, 6, 6], 1, 2, Protocol::Udp)
    }

    fn sketch_cfg() -> CsmConfig {
        CsmConfig { num_counters: 1 << 14, vector_len: 64, seed: 9 }
    }

    #[test]
    fn link_arrival_accounts_for_serialization_and_delay() {
        let link = CollectorLink { delay_nanos: 5_000_000, bandwidth_bytes_per_sec: 1e6 };
        // 1 MB at 1 MB/s = 1 s, plus 5 ms delay.
        assert_eq!(link.arrival_nanos(0, 1_000_000), 1_000_000_000 + 5_000_000);
        assert_eq!(link.arrival_nanos(100, 0), 100 + 5_000_000);
    }

    #[test]
    fn epochs_ship_on_schedule_with_flow_ids() {
        let mut dev = DelegatedDevice::new(sketch_cfg(), CollectorLink::default(), 1_000_000);
        // 3 flows in epoch 0, 1 new flow in epoch 1.
        for t in 0..1000u64 {
            dev.process(&PacketRecord::new(key((t % 3) as u32), 64, t));
        }
        for t in 1_000_000..1_001_000u64 {
            dev.process(&PacketRecord::new(key(9), 64, t));
        }
        let report = dev.finish();
        assert_eq!(report.shipments.len(), 2);
        assert_eq!(report.shipments[0].new_flows, 3);
        assert_eq!(report.shipments[1].new_flows, 1);
        let sketch_bytes = 4 << 14;
        assert_eq!(report.shipments[0].bytes, sketch_bytes + 3 * 13);
        assert!(report.total_bytes() >= 2 * sketch_bytes);
    }

    #[test]
    fn detection_waits_for_epoch_arrival() {
        let epoch = 20_000_000u64; // 20 ms
        let mut dev = DelegatedDevice::new(sketch_cfg(), CollectorLink::default(), epoch);
        dev.arm_detection(key(1), 500.0);
        // 100 kpps attack: crosses 500 pkts at 5 ms, but the collector
        // cannot know before the first epoch arrives.
        for t in 0..4_000u64 {
            dev.process(&PacketRecord::new(key(1), 64, t * 10_000));
        }
        let report = dev.finish();
        let detect = report.detection.expect("collector detects");
        assert!(
            detect >= epoch + CollectorLink::default().delay_nanos,
            "detection at {detect} cannot precede epoch+delay"
        );
    }

    #[test]
    fn bandwidth_accounting_is_positive_under_traffic() {
        let mut dev = DelegatedDevice::new(sketch_cfg(), CollectorLink::default(), 1_000_000);
        for t in 0..10_000u64 {
            dev.process(&PacketRecord::new(key((t % 100) as u32), 64, t * 1_000));
        }
        let report = dev.finish();
        assert!(report.shipments.len() >= 10);
        assert!(report.mean_bandwidth() > 0.0);
    }

    #[test]
    #[should_panic(expected = "epoch must be positive")]
    fn rejects_zero_epoch() {
        let _ = DelegatedDevice::new(sketch_cfg(), CollectorLink::default(), 0);
    }
}
