//! Zero-copy pcap ingest bridged into the multi-core pipeline.
//!
//! [`run_multicore_pcap`] streams a capture file through
//! [`instameasure_packet::chunk::RecordStream`] — borrowed packet views
//! parsed in place, no per-packet allocation — straight into
//! [`crate::multicore::run_multicore_stream`]'s recycled dispatch batches,
//! so the steady state of *file → frame → record → worker* allocates
//! nothing per packet. The reader's [`IngestStats`] are folded into the run
//! report's telemetry as `ingest.chunk_*` counters, next to the batching
//! counters the pipeline already emits.

use std::path::Path;

use instameasure_packet::chunk::{IngestStats, PcapChunkReader, RecordStream};
use instameasure_packet::pcap::PcapError;

use crate::multicore::{run_multicore_stream, MultiCoreConfig, MultiCoreSystem, RunReport};

/// Which ingest path [`run_multicore_pcap`] should take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Map the whole file and parse borrowed views out of the mapping,
    /// falling back to buffered reads if mapping fails.
    Mmap,
    /// Chunked buffered reads only (the explicit copy-path baseline).
    Buffered,
}

/// What a zero-copy ingest run observed about the file itself.
#[derive(Debug, Clone, Copy)]
pub struct PcapIngestReport {
    /// Frames skipped because they did not parse to a flow key.
    pub skipped_frames: u64,
    /// Records fed to the pipeline.
    pub records: u64,
    /// Rebased timestamp of the last parsed packet (the trace span).
    pub last_ts_nanos: u64,
    /// Chunk/copy counters of the reader.
    pub stats: IngestStats,
}

/// Streams a pcap file through the zero-copy reader into the multi-core
/// pipeline, without materialising the record vector in between.
///
/// The returned [`RunReport`]'s telemetry gains `ingest.chunk_fills`,
/// `ingest.chunk_bytes_mapped`, `ingest.chunk_copy_fallbacks` and
/// `ingest.skipped_frames` counters describing how bytes moved.
///
/// # Errors
///
/// Returns [`PcapError`] if the file cannot be opened, its global header is
/// invalid, or a record is truncated/corrupt mid-stream. Pipeline output up
/// to a mid-stream error is discarded: corrupt input should not masquerade
/// as a complete measurement.
///
/// # Panics
///
/// Panics under the same conditions as
/// [`run_multicore_stream`][crate::multicore::run_multicore_stream]
/// (invalid config or a worker thread panic).
pub fn run_multicore_pcap(
    path: impl AsRef<Path>,
    mode: IngestMode,
    cfg: &MultiCoreConfig,
) -> Result<(MultiCoreSystem, RunReport, PcapIngestReport), PcapError> {
    let reader = match mode {
        IngestMode::Mmap => PcapChunkReader::open(path)?,
        IngestMode::Buffered => PcapChunkReader::open_buffered(path)?,
    };
    let mut stream = RecordStream::new(reader);
    let (system, mut report) = run_multicore_stream(stream.by_ref(), cfg);
    let skipped = stream.skipped();
    let last_ts = stream.last_ts_nanos();
    let (_, stats) = stream.finish()?;
    let ingest = PcapIngestReport {
        skipped_frames: skipped,
        records: report.packets + report.dropped,
        last_ts_nanos: last_ts,
        stats,
    };
    report.telemetry.set_counter("ingest.chunk_fills", stats.chunk_fills);
    report.telemetry.set_counter("ingest.chunk_bytes_mapped", stats.bytes_mapped);
    report.telemetry.set_counter("ingest.chunk_copy_fallbacks", stats.copy_fallbacks);
    report.telemetry.set_counter("ingest.skipped_frames", skipped);
    Ok((system, report, ingest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::pcap::{read_records, PcapWriter, TsResolution};
    use instameasure_packet::synth::synthesize_frame;
    use instameasure_packet::{FlowKey, PacketRecord, Protocol};

    fn write_sample(path: &std::path::Path, n: u16) {
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
        for i in 0..n {
            let key = FlowKey::new(
                [1, 2, (i >> 8) as u8, i as u8],
                [9, 9, 9, 9],
                1000 + i,
                80,
                Protocol::Tcp,
            );
            let rec = PacketRecord::new(key, 200, u64::from(i) * 10_000);
            w.write_packet(rec.ts_nanos, &synthesize_frame(&rec)).unwrap();
        }
        w.into_inner().unwrap();
        std::fs::write(path, file).unwrap();
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("instameasure_ingest_{}_{name}", std::process::id()))
    }

    #[test]
    fn pcap_bridge_counts_match_owned_reader() {
        let path = temp("bridge.pcap");
        write_sample(&path, 500);
        let cfg = MultiCoreConfig::builder().workers(2).batch_size(32).build().unwrap();
        for mode in [IngestMode::Mmap, IngestMode::Buffered] {
            let (_, report, ingest) = run_multicore_pcap(&path, mode, &cfg).unwrap();
            let (expected, skipped) =
                read_records(std::fs::File::open(&path).map(std::io::BufReader::new).unwrap())
                    .unwrap();
            assert_eq!(report.packets, expected.len() as u64, "{mode:?}");
            assert_eq!(ingest.skipped_frames, skipped);
            assert_eq!(ingest.records, expected.len() as u64);
            assert_eq!(ingest.last_ts_nanos, expected.last().unwrap().ts_nanos);
            assert_eq!(
                report.telemetry.counter("ingest.chunk_fills"),
                Some(ingest.stats.chunk_fills)
            );
            assert_eq!(
                report.telemetry.counter("ingest.chunk_bytes_mapped"),
                Some(ingest.stats.bytes_mapped)
            );
            assert_eq!(report.telemetry.counter("ingest.skipped_frames"), Some(skipped));
            assert!(report.telemetry.counter("ingest.chunk_copy_fallbacks").is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_tail_surfaces_as_error_not_silent_truncation() {
        let path = temp("corrupt.pcap");
        write_sample(&path, 10);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]); // zeroed tail record
        std::fs::write(&path, bytes).unwrap();
        let cfg = MultiCoreConfig::builder().workers(1).build().unwrap();
        assert!(run_multicore_pcap(&path, IngestMode::Mmap, &cfg).is_err());
        std::fs::remove_file(&path).ok();
    }
}
