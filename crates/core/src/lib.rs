//! The InstaMeasure per-flow measurement system (ICDCS 2019).
//!
//! This crate assembles the substrates into the system the paper deploys:
//!
//! * [`InstaMeasure`] — the single-core pipeline: packets flow through a
//!   [`instameasure_sketch::FlowRegulator`] whose saturation events are
//!   accumulated into an in-DRAM [`instameasure_wsaf::WsafTable`]. Queries
//!   combine the WSAF counters with the sketch residual.
//! * [`multicore`] — the manager/worker system of paper Fig. 5: a manager
//!   thread dispatches packets by the popcount of the source address, in
//!   recycled batches that amortize queue synchronization, to workers with
//!   exclusive FlowRegulators and WSAF shards.
//! * [`heavy_hitter`] — threshold detection over the WSAF, in packets and
//!   in bytes, with false-positive/negative evaluation (Fig. 14).
//! * [`latency`] — the three decoding disciplines of §II (packet-arrival,
//!   saturation-based, delegation-based) raced against each other for the
//!   detection-delay experiment (Fig. 9b).
//! * [`metrics`] — relative-error buckets, standard error, Top-K recall.
//! * [`apps`] — entropy, super-spreader and DDoS-victim detection over
//!   the WSAF's flow samples (the applications §III-B keeps mice for).
//! * [`detect`] — the streaming form of those applications: mergeable
//!   per-epoch feature summaries and epoch-windowed [`detect::Detector`]s
//!   (entropy shift, super-spreader, DDoS victim, heavy change) the live
//!   service runs at every rotation.
//! * [`export`] — NetFlow-style flow-record drain and binary codec.
//! * [`windowed`] — rotating measurement windows with per-epoch Top-K
//!   reports (the paper's 10-minute update mode).
//! * [`collector`] — the conventional delegation architecture (sketch
//!   shipped to a remote collector each epoch), priced in latency and bytes.
//! * [`planner`] — picks (vector size, layer count) for a link's rate and
//!   WSAF memory technology using the exact chain model (§V-B's margin
//!   remark, operationalized).
//! * [`shared_wsaf`] — a lock-striped shared WSAF, the measured
//!   alternative to the paper's per-worker sharding.
//!
//! # Example
//!
//! ```
//! use instameasure_core::{InstaMeasure, InstaMeasureConfig};
//! use instameasure_packet::{FlowKey, PacketRecord, Protocol};
//!
//! let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
//! let key = FlowKey::new([10, 0, 0, 1], [10, 0, 0, 2], 4242, 80, Protocol::Tcp);
//! for t in 0..50_000u64 {
//!     im.process(&PacketRecord::new(key, 1000, t));
//! }
//! let est = im.estimate_packets(&key);
//! assert!((est - 50_000.0).abs() / 50_000.0 < 0.15, "{est}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod collector;
pub mod detect;
pub mod export;
pub mod heavy_hitter;
pub mod ingest;
pub mod latency;
pub mod metrics;
pub mod multicore;
pub mod planner;
pub mod shared_wsaf;
mod system;
pub mod windowed;

pub use system::{
    InstaMeasure, InstaMeasureConfig, InstaMeasureConfigBuilder, InstaMeasureConfigError,
};
