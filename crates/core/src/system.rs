//! The single-core InstaMeasure pipeline.

use instameasure_packet::PerFlowCounter;
use instameasure_packet::{FlowDigest, FlowKey, PacketRecord};
use instameasure_sketch::{
    AnyFilter, FilterKind, FilterStats, FlowFilter, FlowRegulator, FlowUpdate, SketchConfig,
    UnknownFilterError,
};
use instameasure_telemetry::{Instrumented, Snapshot};
use instameasure_wsaf::{WsafConfig, WsafDeposit, WsafStats, WsafTable};

/// Configuration of an [`InstaMeasure`] instance: the front-end filter
/// kind and geometry plus the WSAF table geometry.
///
/// Paper defaults (§IV-D): the [`FilterKind::Regulator`] front end over a
/// 32 KB L1 (→128 KB filter total) and a 2²⁰-entry WSAF. Construct via
/// [`InstaMeasureConfig::builder`] (validating) or from `Default` with
/// [`InstaMeasureConfig::with_sketch`] / [`InstaMeasureConfig::with_wsaf`]
/// / [`InstaMeasureConfig::with_filter`] when the parts are already built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct InstaMeasureConfig {
    /// Sketch (L1) geometry; for alternate filter kinds this sets the
    /// shared equal-memory budget (see [`FilterKind::build`]).
    pub sketch: SketchConfig,
    /// WSAF table geometry and policy.
    pub wsaf: WsafConfig,
    /// Which front-end filter design to run.
    pub filter: FilterKind,
}

/// Errors from [`InstaMeasureConfig::builder`]: whichever half of the
/// system rejected its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InstaMeasureConfigError {
    /// The sketch geometry was invalid.
    Sketch(instameasure_sketch::ConfigError),
    /// The WSAF geometry was invalid.
    Wsaf(instameasure_wsaf::WsafConfigError),
    /// The front-end filter kind was not recognized.
    Filter(UnknownFilterError),
}

impl core::fmt::Display for InstaMeasureConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InstaMeasureConfigError::Sketch(e) => write!(f, "sketch: {e}"),
            InstaMeasureConfigError::Wsaf(e) => write!(f, "wsaf: {e}"),
            InstaMeasureConfigError::Filter(e) => write!(f, "filter: {e}"),
        }
    }
}

impl std::error::Error for InstaMeasureConfigError {}

impl From<instameasure_sketch::ConfigError> for InstaMeasureConfigError {
    fn from(e: instameasure_sketch::ConfigError) -> Self {
        InstaMeasureConfigError::Sketch(e)
    }
}

impl From<instameasure_wsaf::WsafConfigError> for InstaMeasureConfigError {
    fn from(e: instameasure_wsaf::WsafConfigError) -> Self {
        InstaMeasureConfigError::Wsaf(e)
    }
}

impl From<UnknownFilterError> for InstaMeasureConfigError {
    fn from(e: UnknownFilterError) -> Self {
        InstaMeasureConfigError::Filter(e)
    }
}

/// Validating builder for [`InstaMeasureConfig`]: forwards the common
/// knobs of both halves and runs each half's own validation on
/// [`InstaMeasureConfigBuilder::build`].
///
/// ```
/// use instameasure_core::InstaMeasureConfig;
/// let cfg = InstaMeasureConfig::builder()
///     .l1_memory_bytes(32 * 1024)
///     .vector_bits(8)
///     .wsaf_entries_log2(20)
///     .seed(42)
///     .build()?;
/// assert_eq!(cfg.sketch.memory_bytes(), 32 * 1024);
/// assert_eq!(cfg.wsaf.num_entries(), 1 << 20);
/// # Ok::<(), instameasure_core::InstaMeasureConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstaMeasureConfigBuilder {
    sketch: instameasure_sketch::SketchConfigBuilder,
    wsaf: instameasure_wsaf::WsafConfigBuilder,
    filter: FilterKind,
}

impl InstaMeasureConfigBuilder {
    /// Sets the L1 sketch memory in bytes (default 32 KB, the paper's
    /// 128 KB-total configuration).
    #[must_use]
    pub fn l1_memory_bytes(mut self, bytes: usize) -> Self {
        self.sketch = self.sketch.memory_bytes(bytes);
        self
    }

    /// Sets the virtual-vector size in bits (default 8).
    #[must_use]
    pub fn vector_bits(mut self, bits: u32) -> Self {
        self.sketch = self.sketch.vector_bits(bits);
        self
    }

    /// Sets log₂ of the WSAF slot count (default 20).
    #[must_use]
    pub fn wsaf_entries_log2(mut self, n: u32) -> Self {
        self.wsaf = self.wsaf.entries_log2(n);
        self
    }

    /// Sets the WSAF probe limit (default 16).
    #[must_use]
    pub fn wsaf_probe_limit(mut self, p: usize) -> Self {
        self.wsaf = self.wsaf.probe_limit(p);
        self
    }

    /// Sets the WSAF idle expiry in nanoseconds (default 60 s).
    #[must_use]
    pub fn wsaf_expiry_nanos(mut self, t: u64) -> Self {
        self.wsaf = self.wsaf.expiry_nanos(t);
        self
    }

    /// Selects the front-end filter design (default
    /// [`FilterKind::Regulator`], the paper's design). Alternate kinds are
    /// sized to the same total memory the regulator would occupy, so
    /// swapping kinds never changes the memory story. Parse user-facing
    /// names with [`FilterKind::from_str`](core::str::FromStr), whose
    /// error converts into [`InstaMeasureConfigError::Filter`].
    #[must_use]
    pub fn with_filter(mut self, kind: FilterKind) -> Self {
        self.filter = kind;
        self
    }

    /// Seeds both halves from one value (the WSAF seed is decorrelated so
    /// the sketch and table never share a hash family).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.sketch = self.sketch.seed(seed);
        self.wsaf = self.wsaf.seed(seed ^ 0x57AF_57AF_57AF_57AF);
        self
    }

    /// Validates both halves and returns the config.
    ///
    /// # Errors
    ///
    /// Returns [`InstaMeasureConfigError`] naming the half whose
    /// parameters were rejected.
    pub fn build(self) -> Result<InstaMeasureConfig, InstaMeasureConfigError> {
        Ok(InstaMeasureConfig {
            sketch: self.sketch.build()?,
            wsaf: self.wsaf.build()?,
            filter: self.filter,
        })
    }
}

impl InstaMeasureConfig {
    /// Starts building a config with the paper's defaults.
    #[must_use]
    pub fn builder() -> InstaMeasureConfigBuilder {
        InstaMeasureConfigBuilder::default()
    }

    /// A small configuration for unit tests and doctests (4 KB L1,
    /// 2¹⁴-entry WSAF) — fast to construct, still accurate for a handful
    /// of flows.
    #[must_use]
    pub fn small_for_tests(mut self) -> Self {
        self.sketch = SketchConfig::builder()
            .memory_bytes(4 * 1024)
            .vector_bits(8)
            .build()
            .expect("static test config is valid");
        self.wsaf =
            WsafConfig::builder().entries_log2(14).build().expect("static test config is valid");
        self
    }

    /// Replaces the sketch geometry.
    #[must_use]
    pub fn with_sketch(mut self, sketch: SketchConfig) -> Self {
        self.sketch = sketch;
        self
    }

    /// Replaces the WSAF geometry.
    #[must_use]
    pub fn with_wsaf(mut self, wsaf: WsafConfig) -> Self {
        self.wsaf = wsaf;
        self
    }

    /// Replaces the front-end filter kind.
    #[must_use]
    pub fn with_filter(mut self, filter: FilterKind) -> Self {
        self.filter = filter;
        self
    }
}

/// The InstaMeasure measurement pipeline: a pluggable front-end
/// [`FlowFilter`] in front of an in-DRAM WSAF table (paper Fig. 2a). The
/// default filter is the paper's [`FlowRegulator`]; alternates are chosen
/// via [`InstaMeasureConfig::filter`].
///
/// Packets are fed to [`InstaMeasure::process`]; per-flow queries combine
/// the WSAF's accumulated counters with the packets still retained inside
/// the filter (the residual), which is what makes query results *instant*
/// rather than waiting for a collector round-trip.
///
/// `Clone` is deliberate: the live service's thread-per-shard engine
/// publishes point-in-time snapshots of a shard by cloning its pipeline
/// at a batch boundary, so queries read a consistent immutable view while
/// the owning worker keeps ingesting.
#[derive(Debug, Clone)]
pub struct InstaMeasure {
    filter: AnyFilter,
    wsaf: WsafTable,
    last_ts: u64,
    /// Recycled buffers for [`InstaMeasure::process_batch`]: released
    /// updates and the deposits handed to the WSAF.
    update_buf: Vec<FlowUpdate>,
    deposit_buf: Vec<WsafDeposit>,
}

impl InstaMeasure {
    /// Creates an empty system.
    #[must_use]
    pub fn new(cfg: InstaMeasureConfig) -> Self {
        InstaMeasure {
            filter: cfg.filter.build(cfg.sketch),
            wsaf: WsafTable::new(cfg.wsaf),
            last_ts: 0,
            update_buf: Vec::new(),
            deposit_buf: Vec::new(),
        }
    }

    /// Feeds one packet. Returns the [`FlowUpdate`] if the filter released
    /// an accumulated count into the WSAF on this packet (callers like the
    /// heavy-hitter detector hook on this).
    pub fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate> {
        self.last_ts = pkt.ts_nanos;
        let update = self.filter.process(pkt)?;
        self.wsaf.accumulate_hashed(
            &update.key,
            self.wsaf.hash_digest(update.digest),
            update.est_pkts,
            update.est_bytes,
            update.ts_nanos,
        );
        Some(update)
    }

    /// Feeds a batch of packets through the batched hot path: the filter
    /// hashes every packet once up front and (where the design allows)
    /// prefetches memory across the batch, then the released updates are
    /// accumulated into the WSAF as one prefetch-pipelined pass.
    ///
    /// Bit-identical to calling [`InstaMeasure::process`] on each packet
    /// in order: the filter and the WSAF share no state, so draining the
    /// filter's updates after the whole batch (in release order) leaves
    /// both structures in exactly the state the interleaved scalar path
    /// produces.
    pub fn process_batch(&mut self, pkts: &[PacketRecord]) {
        let Some(last) = pkts.last() else { return };
        self.last_ts = last.ts_nanos;

        let mut updates = core::mem::take(&mut self.update_buf);
        updates.clear();
        self.filter.process_batch(pkts, &mut updates);

        let mut deposits = core::mem::take(&mut self.deposit_buf);
        deposits.clear();
        deposits.extend(updates.iter().map(|u| WsafDeposit {
            key: u.key,
            digest: u.digest,
            est_pkts: u.est_pkts,
            est_bytes: u.est_bytes,
            ts: u.ts_nanos,
        }));
        self.wsaf.accumulate_batch(&deposits);

        self.update_buf = updates;
        self.deposit_buf = deposits;
    }

    /// Estimated packet count of a flow: WSAF accumulation + filter
    /// residual. The key bytes are hashed once; both structures derive
    /// their lanes from the digest.
    #[must_use]
    pub fn estimate_packets(&self, key: &FlowKey) -> f64 {
        let digest = FlowDigest::of(key);
        let table =
            self.wsaf.get_hashed(key, self.wsaf.hash_digest(digest)).map_or(0.0, |e| e.packets);
        table + self.filter.estimate_packets(digest)
    }

    /// Estimated byte count of a flow: WSAF accumulation plus the filter's
    /// byte residual. Filters that cannot attribute retained bytes to a
    /// flow (the probabilistic kinds) report no byte residual; the packet
    /// residual is then scaled by the flow's observed mean packet size
    /// (falling back to zero for flows the WSAF has never seen — their
    /// byte residual cannot be attributed a size yet).
    #[must_use]
    pub fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        let digest = FlowDigest::of(key);
        let entry = self.wsaf.get_hashed(key, self.wsaf.hash_digest(digest));
        match (entry, self.filter.estimate_bytes(digest)) {
            (Some(e), Some(fb)) => e.bytes + fb,
            (None, Some(fb)) => fb,
            (Some(e), None) => {
                let mean_len = if e.packets > 0.0 { e.bytes / e.packets } else { 0.0 };
                e.bytes + self.filter.estimate_packets(digest) * mean_len
            }
            (None, None) => 0.0,
        }
    }

    /// Both per-flow estimates with a single hash of the key bytes:
    /// `(packets, bytes)`. Query layers answering both halves of one
    /// request (e.g. the service engine) use this instead of two
    /// [`InstaMeasure::estimate_packets`]/[`InstaMeasure::estimate_bytes`]
    /// calls, which would digest the key twice.
    #[must_use]
    pub fn estimate(&self, key: &FlowKey) -> (f64, f64) {
        let digest = FlowDigest::of(key);
        let residual = self.filter.estimate_packets(digest);
        let entry = self.wsaf.get_hashed(key, self.wsaf.hash_digest(digest));
        match (entry, self.filter.estimate_bytes(digest)) {
            (Some(e), Some(fb)) => (e.packets + residual, e.bytes + fb),
            (None, Some(fb)) => (residual, fb),
            (Some(e), None) => {
                let mean_len = if e.packets > 0.0 { e.bytes / e.packets } else { 0.0 };
                (e.packets + residual, e.bytes + residual * mean_len)
            }
            (None, None) => (residual, 0.0),
        }
    }

    /// The front-end filter, behind the trait (residual queries, memory
    /// accounting, design-agnostic diagnostics).
    #[must_use]
    pub fn filter(&self) -> &dyn FlowFilter {
        &self.filter
    }

    /// Which front-end filter design this instance runs.
    #[must_use]
    pub fn filter_kind(&self) -> FilterKind {
        self.filter.kind()
    }

    /// The filter's work counters (regulation rate, accesses, hashes).
    #[must_use]
    pub fn filter_stats(&self) -> FilterStats {
        self.filter.stats()
    }

    /// The filter's work counters.
    #[deprecated(since = "0.6.0", note = "renamed to `filter_stats`")]
    #[must_use]
    pub fn regulator_stats(&self) -> FilterStats {
        self.filter.stats()
    }

    /// The WSAF table's operation counters.
    #[must_use]
    pub fn wsaf_stats(&self) -> WsafStats {
        self.wsaf.stats()
    }

    /// Read access to the WSAF (Top-K queries, iteration).
    #[must_use]
    pub fn wsaf(&self) -> &WsafTable {
        &self.wsaf
    }

    /// Mutable access to the WSAF.
    #[deprecated(
        since = "0.6.0",
        note = "use `drain_expired` for maintenance instead of reaching into the table"
    )]
    pub fn wsaf_mut(&mut self) -> &mut WsafTable {
        &mut self.wsaf
    }

    /// Drains WSAF entries idle past their expiry at time `now` into
    /// export records ([`crate::export::drain_expired`]) — the periodic
    /// maintenance pass, without handing out the whole mutable table.
    pub fn drain_expired(&mut self, now: u64) -> Vec<crate::export::FlowRecord> {
        crate::export::drain_expired(&mut self.wsaf, now)
    }

    /// The underlying [`FlowRegulator`] when this instance runs the
    /// regulator kind (regulator-specific diagnostics).
    #[deprecated(
        since = "0.6.0",
        note = "use `filter()` / `filter_stats()`; returns None for non-regulator filter kinds"
    )]
    #[must_use]
    pub fn regulator(&self) -> Option<&FlowRegulator> {
        self.filter.as_regulator()
    }

    /// Timestamp of the most recently processed packet.
    #[must_use]
    pub fn last_ts(&self) -> u64 {
        self.last_ts
    }

    /// Total filter + WSAF memory modeled in paper terms (filter bytes +
    /// 33-byte WSAF entries).
    #[must_use]
    pub fn paper_memory_bytes(&self) -> usize {
        self.filter.memory_bytes() + self.wsaf.config().paper_dram_bytes()
    }

    /// Clears all measurement state.
    pub fn reset(&mut self) {
        self.filter.reset();
        self.wsaf.clear();
        self.last_ts = 0;
    }
}

impl Instrumented for InstaMeasure {
    /// The union of the filter's metrics (each design keeps its own
    /// prefix, e.g. `regulator.*` or `swing.*`) and the table's `wsaf.*`
    /// metrics — the single-core pipeline's complete operational view.
    fn telemetry(&self) -> Snapshot {
        let mut snap = self.filter.telemetry();
        snap.merge(&self.wsaf.telemetry());
        snap
    }
}

impl PerFlowCounter for InstaMeasure {
    fn record(&mut self, pkt: &PacketRecord) {
        self.process(pkt);
    }

    fn estimate_packets(&self, key: &FlowKey) -> f64 {
        InstaMeasure::estimate_packets(self, key)
    }

    fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        InstaMeasure::estimate_bytes(self, key)
    }

    fn memory_bytes(&self) -> usize {
        self.paper_memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [1, 2, 3, 4], 100, 200, Protocol::Tcp)
    }

    fn system() -> InstaMeasure {
        InstaMeasure::new(InstaMeasureConfig::default().small_for_tests())
    }

    #[test]
    fn elephant_estimate_tracks_truth() {
        let mut im = system();
        let n = 100_000u64;
        for t in 0..n {
            im.process(&PacketRecord::new(key(1), 800, t));
        }
        let pkts = im.estimate_packets(&key(1));
        assert!((pkts - n as f64).abs() / (n as f64) < 0.12, "packets {pkts}");
        let bytes = im.estimate_bytes(&key(1));
        let truth_bytes = n as f64 * 800.0;
        assert!((bytes - truth_bytes).abs() / truth_bytes < 0.12, "bytes {bytes}");
    }

    #[test]
    fn mice_stay_in_the_sketch() {
        let mut im = system();
        for i in 0..500u32 {
            for t in 0..3u64 {
                im.process(&PacketRecord::new(key(i), 100, t));
            }
        }
        // Almost no WSAF entries for 3-packet mice...
        assert!(im.wsaf().len() < 25, "wsaf holds {} mice", im.wsaf().len());
        // ...but estimates still see them via the residual.
        let est = im.estimate_packets(&key(7));
        assert!(est > 0.0, "mice visible through residual");
    }

    #[test]
    fn unseen_flow_estimates_zero_bytes_and_no_panic() {
        let im = system();
        assert_eq!(im.estimate_bytes(&key(9)), 0.0);
        assert_eq!(im.estimate_packets(&key(9)), 0.0);
    }

    #[test]
    fn process_returns_updates_only_on_saturation() {
        let mut im = system();
        let mut updates = 0u64;
        let n = 50_000u64;
        for t in 0..n {
            if im.process(&PacketRecord::new(key(2), 1000, t)).is_some() {
                updates += 1;
            }
        }
        assert_eq!(updates, im.filter_stats().updates);
        let rate = im.filter_stats().regulation_rate();
        assert!((0.005..0.04).contains(&rate), "regulation rate {rate}");
        assert_eq!(im.wsaf_stats().accumulates, updates);
    }

    #[test]
    fn last_ts_and_reset() {
        let mut im = system();
        im.process(&PacketRecord::new(key(1), 64, 99));
        assert_eq!(im.last_ts(), 99);
        im.reset();
        assert_eq!(im.last_ts(), 0);
        assert_eq!(im.estimate_packets(&key(1)), 0.0);
        assert!(im.wsaf().is_empty());
    }

    #[test]
    fn paper_memory_accounting() {
        let im = InstaMeasure::new(InstaMeasureConfig::default());
        // 128 KB sketch + 33 MB WSAF.
        assert_eq!(im.paper_memory_bytes(), 128 * 1024 + 33 * (1 << 20));
    }

    #[test]
    fn per_flow_counter_trait_roundtrip() {
        let mut im = system();
        let pkt = PacketRecord::new(key(3), 500, 0);
        for _ in 0..1000 {
            PerFlowCounter::record(&mut im, &pkt);
        }
        let est = PerFlowCounter::estimate_packets(&im, &key(3));
        assert!((est - 1000.0).abs() / 1000.0 < 0.3, "{est}");
        assert!(PerFlowCounter::memory_bytes(&im) > 0);
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = InstaMeasureConfig::builder().build().unwrap();
        let dflt = InstaMeasureConfig::default();
        assert_eq!(built.sketch, dflt.sketch);
        // Seeds are the only half the builder's default shares with
        // Default; the rest of the WSAF geometry must agree too.
        assert_eq!(built.wsaf.entries_log2(), dflt.wsaf.entries_log2());
        assert_eq!(built.wsaf.probe_limit(), dflt.wsaf.probe_limit());
        assert_eq!(built.wsaf.expiry_nanos(), dflt.wsaf.expiry_nanos());
    }

    #[test]
    fn builder_rejects_bad_halves() {
        let err = InstaMeasureConfig::builder().vector_bits(1).build().unwrap_err();
        assert!(matches!(err, InstaMeasureConfigError::Sketch(_)), "{err}");
        let err = InstaMeasureConfig::builder().wsaf_entries_log2(31).build().unwrap_err();
        assert!(matches!(err, InstaMeasureConfigError::Wsaf(_)), "{err}");
        assert!(err.to_string().contains("wsaf"));
    }

    #[test]
    fn builder_decorrelates_seeds() {
        let cfg = InstaMeasureConfig::builder().seed(7).build().unwrap();
        assert_eq!(cfg.sketch.seed(), 7);
        assert_ne!(cfg.wsaf.seed(), 7);
    }
}
