//! A lock-striped shared WSAF — the design alternative to per-worker
//! sharding.
//!
//! The paper's multi-core design (Fig. 5) gives every worker an exclusive
//! WSAF shard, trading memory partitioning for zero contention. The
//! conventional alternative is one shared table behind striped locks:
//! queries see a single namespace and memory is pooled, but writers
//! contend. This module implements the alternative so the trade-off can
//! be measured instead of asserted (ablation study F) — and it is the
//! right building block when multiple *query* threads need a live view of
//! one measurement pipeline.
//!
//! Striping assigns each flow to `stripes = 2^k` sub-tables by hash, so
//! two writers contend only when their flows share a stripe. With the
//! FlowRegulator in front, writes are already ~1% of packets, which is
//! why even modest striping keeps contention negligible.

use instameasure_packet::hash::flow_hash64;
use instameasure_packet::FlowKey;
use instameasure_telemetry::{Instrumented, Snapshot};
use instameasure_wsaf::{AccumulateOutcome, FlowEntry, WsafConfig, WsafTable};
use parking_lot::{Mutex, MutexGuard};

/// A shared, thread-safe WSAF built from `2^k` lock-striped sub-tables.
///
/// # Example
///
/// ```
/// use instameasure_core::shared_wsaf::StripedWsaf;
/// use instameasure_packet::{FlowKey, Protocol};
/// use instameasure_wsaf::WsafConfig;
///
/// let cfg = WsafConfig::builder().entries_log2(10).build()?;
/// let table = StripedWsaf::new(cfg, 4)?;
/// let key = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 80, 443, Protocol::Tcp);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             for t in 0..100 {
///                 table.accumulate(&key, 1.0, 64.0, t);
///             }
///         });
///     }
/// });
/// assert_eq!(table.get(&key).unwrap().packets, 400.0);
/// # Ok::<(), instameasure_wsaf::WsafConfigError>(())
/// ```
#[derive(Debug)]
pub struct StripedWsaf {
    stripes: Vec<Mutex<WsafTable>>,
    seed: u64,
}

impl StripedWsaf {
    /// Creates a striped table: `2^stripes_log2` sub-tables, each sized
    /// `cfg.num_entries() / 2^stripes_log2` so total capacity matches
    /// `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the underlying config error if the per-stripe geometry is
    /// invalid (e.g. more stripes than entries).
    pub fn new(
        cfg: WsafConfig,
        stripes_log2: u32,
    ) -> Result<Self, instameasure_wsaf::WsafConfigError> {
        let per_stripe = WsafConfig::builder()
            .entries_log2(cfg.entries_log2().saturating_sub(stripes_log2).max(1))
            .probe_limit(cfg.probe_limit())
            .expiry_nanos(cfg.expiry_nanos())
            .eviction(cfg.eviction())
            .seed(cfg.seed())
            .build()?;
        let n = 1usize << stripes_log2;
        Ok(StripedWsaf {
            stripes: (0..n).map(|_| Mutex::new(WsafTable::new(per_stripe))).collect(),
            seed: cfg.seed() ^ 0x5712_9ED5,
        })
    }

    /// Number of stripes.
    #[must_use]
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    fn stripe(&self, key: &FlowKey) -> MutexGuard<'_, WsafTable> {
        let idx = (flow_hash64(key, self.seed) as usize) & (self.stripes.len() - 1);
        self.stripes[idx].lock()
    }

    /// Accumulates into the flow's stripe (blocking on that stripe only).
    pub fn accumulate(
        &self,
        key: &FlowKey,
        est_pkts: f64,
        est_bytes: f64,
        ts: u64,
    ) -> AccumulateOutcome {
        self.stripe(key).accumulate(key, est_pkts, est_bytes, ts)
    }

    /// Looks up a flow (copied out, so no lock is held afterwards).
    #[must_use]
    pub fn get(&self, key: &FlowKey) -> Option<FlowEntry> {
        self.stripe(key).get(key).copied()
    }

    /// Total live entries across stripes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every stripe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global Top-K by packets, merged across stripes.
    #[must_use]
    pub fn top_k_by_packets(&self, k: usize) -> Vec<FlowEntry> {
        let mut all: Vec<FlowEntry> =
            self.stripes.iter().flat_map(|s| s.lock().top_k_by_packets(k)).collect();
        all.sort_by(|a, b| b.packets.total_cmp(&a.packets));
        all.truncate(k);
        all
    }

    /// Snapshot of all live entries.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlowEntry> {
        self.stripes.iter().flat_map(|s| s.lock().iter().copied().collect::<Vec<_>>()).collect()
    }
}

impl Instrumented for StripedWsaf {
    /// Merges every stripe's `wsaf.*` snapshot: counters and the
    /// probe-length histogram sum across stripes, gauges (`load_factor`)
    /// keep the worst stripe.
    fn telemetry(&self) -> Snapshot {
        let mut merged = Snapshot::new();
        for stripe in &self.stripes {
            merged.merge(&stripe.lock().telemetry());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [1, 1, 1, 1], 5, 6, Protocol::Tcp)
    }

    fn table(stripes_log2: u32) -> StripedWsaf {
        StripedWsaf::new(WsafConfig::builder().entries_log2(12).build().unwrap(), stripes_log2)
            .unwrap()
    }

    #[test]
    fn behaves_like_a_single_table_for_serial_use() {
        let t = table(3);
        assert_eq!(t.num_stripes(), 8);
        for i in 0..500u32 {
            t.accumulate(&key(i), f64::from(i), 10.0, 0);
        }
        assert_eq!(t.len(), 500);
        for i in 0..500u32 {
            assert_eq!(t.get(&key(i)).unwrap().packets, f64::from(i));
        }
        assert!(t.get(&key(9999)).is_none());
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let t = table(4);
        let writers = 8;
        let per_writer = 5_000u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let t = &t;
                s.spawn(move || {
                    for n in 0..per_writer {
                        // Mix of a shared hot flow and private flows.
                        t.accumulate(&key(0), 1.0, 64.0, n);
                        t.accumulate(&key(1000 + w), 1.0, 64.0, n);
                    }
                });
            }
        });
        let hot = t.get(&key(0)).unwrap();
        assert_eq!(hot.packets, (writers as u64 * per_writer) as f64);
        for w in 0..writers {
            assert_eq!(t.get(&key(1000 + w)).unwrap().packets, per_writer as f64);
        }
    }

    #[test]
    fn top_k_merges_across_stripes() {
        let t = table(3);
        for i in 0..100u32 {
            t.accumulate(&key(i), f64::from(i), 0.0, 0);
        }
        let top = t.top_k_by_packets(5);
        let counts: Vec<u32> = top.iter().map(|e| e.packets as u32).collect();
        assert_eq!(counts, vec![99, 98, 97, 96, 95]);
    }

    #[test]
    fn snapshot_covers_everything() {
        let t = table(2);
        for i in 0..64u32 {
            t.accumulate(&key(i), 1.0, 1.0, 0);
        }
        assert_eq!(t.snapshot().len(), 64);
    }

    #[test]
    fn telemetry_merges_stripes() {
        let t = table(3);
        for i in 0..400u32 {
            t.accumulate(&key(i), 1.0, 1.0, 0);
            t.accumulate(&key(i), 1.0, 1.0, 1);
        }
        let snap = t.telemetry();
        assert_eq!(snap.counter("wsaf.accumulates"), Some(800));
        assert_eq!(snap.counter("wsaf.inserts"), Some(400));
        assert_eq!(snap.counter("wsaf.updates"), Some(400));
        assert_eq!(snap.counter("wsaf.live_entries"), Some(t.len() as u64));
        assert_eq!(snap.histogram("wsaf.probe_len").unwrap().count, 800);
    }

    #[test]
    fn capacity_is_preserved_across_striping() {
        // 2^12 entries split over 2^4 stripes: total capacity unchanged.
        let t = table(4);
        for i in 0..10_000u32 {
            t.accumulate(&key(i), 1.0, 1.0, 0);
        }
        assert!(t.len() <= 1 << 12);
        assert!(t.len() > 3_000, "stripes fill in parallel: {}", t.len());
    }
}
