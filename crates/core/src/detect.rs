//! Epoch-windowed anomaly detectors over WSAF feature summaries.
//!
//! [`apps`](crate::apps) answers one-shot questions over a single WSAF
//! snapshot. Streaming detection needs more structure: the service
//! engine closes a measurement epoch, every shard contributes its
//! retiring WSAF state, and detectors compare the closed epoch against
//! the previous one. This module holds the pure, engine-agnostic half
//! of that pipeline:
//!
//! * [`EpochFeatures`] — a mergeable summary extracted from any number
//!   of WSAF shards. Merging per-shard summaries is *exactly* the
//!   summary of the union: per-flow packet counts are keyed by the full
//!   5-tuple (flows never straddle shards under popcount routing, and
//!   `+` is the safe merge even if they did), and fan-out/fan-in are
//!   plain set unions. Every derived quantity (entropy, totals) is
//!   computed over a sorted order, so the answer is independent of
//!   shard count, merge order and hash-map iteration order.
//! * [`Detector`] — the verdict contract: given the window
//!   `(previous epoch, closed epoch)`, return the [`Anomaly`] list.
//! * Four standard implementations matching the follow-up paper's
//!   detection suite: [`EntropyShiftDetector`], [`SuperSpreaderDetector`],
//!   [`DdosVictimDetector`] and [`HeavyChangeDetector`], assembled by
//!   [`DetectorSuite::standard`].
//!
//! Determinism is a contract here, not an accident: the service-level
//! property tests assert that verdicts are identical across shard
//! counts and batch sizes, which only holds because every detector
//! sorts its candidates and every float reduction runs in value order.

use std::collections::{HashMap, HashSet};

use instameasure_packet::FlowKey;
use instameasure_wsaf::WsafTable;

/// The anomaly classes the standard suite can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// The normalized flow-size entropy moved by more than the
    /// configured threshold between consecutive epochs (traffic mix
    /// upheaval: a flood of uniform mice, or one flow eating the link).
    EntropyShift,
    /// A source talking to an anomalous number of distinct
    /// destinations (scan / worm fan-out).
    SuperSpreader,
    /// A destination contacted by an anomalous number of distinct
    /// sources (DDoS fan-in).
    DdosVictim,
    /// A single flow's packet count changed by more than the configured
    /// factor/floor between consecutive epochs.
    HeavyChange,
}

/// Every anomaly kind, in wire-code order.
pub const ALL_ANOMALY_KINDS: [AnomalyKind; 4] = [
    AnomalyKind::EntropyShift,
    AnomalyKind::SuperSpreader,
    AnomalyKind::DdosVictim,
    AnomalyKind::HeavyChange,
];

impl AnomalyKind {
    /// Stable wire code (`0..=3`).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            AnomalyKind::EntropyShift => 0,
            AnomalyKind::SuperSpreader => 1,
            AnomalyKind::DdosVictim => 2,
            AnomalyKind::HeavyChange => 3,
        }
    }

    /// Inverse of [`AnomalyKind::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        ALL_ANOMALY_KINDS.get(code as usize).copied()
    }

    /// This kind's bit in a subscription mask.
    #[must_use]
    pub fn bit(self) -> u8 {
        1 << self.code()
    }

    /// Stable lowercase label (telemetry suffixes, CLI output).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::EntropyShift => "entropy_shift",
            AnomalyKind::SuperSpreader => "super_spreader",
            AnomalyKind::DdosVictim => "ddos_victim",
            AnomalyKind::HeavyChange => "heavy_change",
        }
    }
}

impl core::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// What an anomaly is about: a host (spreader source, DDoS victim) or a
/// single flow (heavy change, entropy-shift dominant flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subject {
    /// An IPv4 host (big-endian bytes).
    Host([u8; 4]),
    /// A full 5-tuple.
    Flow(FlowKey),
}

impl core::fmt::Display for Subject {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Subject::Host(ip) => {
                write!(f, "{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3])
            }
            Subject::Flow(key) => write!(f, "{key}"),
        }
    }
}

/// One detector verdict for one closed epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anomaly {
    /// Which detector fired.
    pub kind: AnomalyKind,
    /// What it fired about.
    pub subject: Subject,
    /// The measured quantity (fan count, entropy delta, packet delta).
    /// Signed where direction matters: a negative entropy shift means
    /// the mix collapsed toward one flow.
    pub score: f64,
    /// The threshold the score was compared against (always positive;
    /// `score.abs() >= threshold` held when the anomaly was emitted).
    pub threshold: f64,
}

/// Thresholds for the standard detector suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Both epochs must hold at least this many sampled flows before
    /// the entropy detector speaks (tiny samples have noisy entropy).
    pub min_flows: usize,
    /// Absolute change in normalized entropy (`[0, 1]` scale) that
    /// counts as a shift.
    pub entropy_shift: f64,
    /// Distinct-destination count that makes a source a super-spreader.
    pub spreader_fanout: usize,
    /// Distinct-source count that makes a destination a DDoS victim.
    pub victim_fanin: usize,
    /// A flow's epoch-over-epoch packet change must exceed
    /// `factor x previous` (relative part of the heavy-change test).
    pub heavy_change_factor: f64,
    /// ... and this absolute packet floor (so small flows can't fire on
    /// ratios over tiny baselines).
    pub heavy_change_floor: f64,
    /// Per-kind verdict cap per epoch (alerts are sorted by severity
    /// before truncation, so the cap drops the least severe).
    pub max_alerts_per_kind: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_flows: 32,
            entropy_shift: 0.25,
            spreader_fanout: 64,
            victim_fanin: 64,
            heavy_change_factor: 4.0,
            heavy_change_floor: 2_000.0,
            max_alerts_per_kind: 8,
        }
    }
}

/// A mergeable feature summary of one measurement epoch, extracted from
/// one or more WSAF shards.
///
/// The merge is exact: `merge`-ing the summaries of any partition of a
/// set of WSAF entries equals one [`EpochFeatures::absorb`] pass over
/// the whole set. That is what lets per-shard extraction at rotation
/// time stand in for a global pass.
#[derive(Debug, Clone, Default)]
pub struct EpochFeatures {
    flow_packets: HashMap<FlowKey, f64>,
    fanout: HashMap<[u8; 4], HashSet<[u8; 4]>>,
    fanin: HashMap<[u8; 4], HashSet<[u8; 4]>>,
}

impl EpochFeatures {
    /// Folds every entry of a WSAF shard into the summary.
    pub fn absorb(&mut self, table: &WsafTable) {
        for e in table.iter() {
            *self.flow_packets.entry(e.key).or_insert(0.0) += e.packets;
            self.fanout.entry(e.key.src_ip).or_default().insert(e.key.dst_ip);
            self.fanin.entry(e.key.dst_ip).or_default().insert(e.key.src_ip);
        }
    }

    /// Folds another summary in (set unions plus per-key sums).
    pub fn merge(&mut self, other: &EpochFeatures) {
        for (key, pkts) in &other.flow_packets {
            *self.flow_packets.entry(*key).or_insert(0.0) += pkts;
        }
        for (host, peers) in &other.fanout {
            self.fanout.entry(*host).or_default().extend(peers.iter().copied());
        }
        for (host, peers) in &other.fanin {
            self.fanin.entry(*host).or_default().extend(peers.iter().copied());
        }
    }

    /// Distinct sampled flows in the epoch.
    #[must_use]
    pub fn flows(&self) -> usize {
        self.flow_packets.len()
    }

    /// True when the epoch saw no sampled flows at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flow_packets.is_empty()
    }

    /// Per-flow packet counts (rounded to whole packets, zero-flows
    /// dropped), sorted descending so the result is independent of map
    /// iteration order. This is the observed-workload shape the epoch
    /// re-tuner feeds back into the config solver.
    #[must_use]
    pub fn flow_sizes(&self) -> Vec<u64> {
        let mut sizes: Vec<u64> =
            self.flow_packets.values().map(|p| p.round() as u64).filter(|&s| s > 0).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// Total accumulated packets, summed in sorted value order so the
    /// result is bit-stable across map iteration orders.
    #[must_use]
    pub fn total_packets(&self) -> f64 {
        sorted_sum(self.flow_packets.values().copied())
    }

    /// Normalized flow-size entropy in `[0, 1]` (1.0 for ≤1 flow),
    /// matching [`crate::apps::normalized_entropy`] semantics but
    /// computed order-independently from the summary.
    #[must_use]
    pub fn normalized_entropy(&self) -> f64 {
        let n = self.flows();
        if n <= 1 {
            return 1.0;
        }
        let total = self.total_packets();
        if total <= 0.0 {
            return 1.0;
        }
        // H = -Σ (p/P) log2(p/P) = log2(P) - (Σ p·log2 p) / P
        let plogp =
            sorted_sum(self.flow_packets.values().filter(|p| **p > 0.0).map(|p| p * p.log2()));
        ((total.log2() - plogp / total) / (n as f64).log2()).clamp(0.0, 1.0)
    }

    /// Distinct destinations this source touched (0 if unseen).
    #[must_use]
    pub fn fanout_of(&self, src: [u8; 4]) -> usize {
        self.fanout.get(&src).map_or(0, HashSet::len)
    }

    /// Distinct sources that touched this destination (0 if unseen).
    #[must_use]
    pub fn fanin_of(&self, dst: [u8; 4]) -> usize {
        self.fanin.get(&dst).map_or(0, HashSet::len)
    }

    /// Accumulated packets of one flow (0 if unseen).
    #[must_use]
    pub fn packets_of(&self, key: &FlowKey) -> f64 {
        self.flow_packets.get(key).copied().unwrap_or(0.0)
    }

    /// The heaviest sampled flow (ties broken by key order), if any.
    #[must_use]
    pub fn dominant_flow(&self) -> Option<FlowKey> {
        self.flow_packets
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(key, _)| *key)
    }
}

/// Sums in ascending value order: independent of the caller's iteration
/// order, so merged and single-pass summaries agree to the last bit.
fn sorted_sum(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(f64::total_cmp);
    v.iter().sum()
}

/// The `(previous, closed)` epoch pair a detector evaluates.
#[derive(Debug, Clone, Copy)]
pub struct EpochWindow<'a> {
    /// The epoch that just closed (alerts carry this number).
    pub epoch: u64,
    /// The epoch before it; `None` on the first rotation, when
    /// differential detectors stay silent for lack of a baseline.
    pub prev: Option<&'a EpochFeatures>,
    /// The closed epoch's merged summary.
    pub cur: &'a EpochFeatures,
}

/// An epoch-windowed detector: pure function from a window to verdicts.
///
/// Contract: the verdict list must be deterministic in the window
/// contents alone — sorted by severity, capped at
/// [`DetectorConfig::max_alerts_per_kind`], no dependence on map
/// iteration order or wall-clock time. The service property suite
/// enforces this across shard counts and batch sizes.
pub trait Detector: Send + Sync {
    /// The anomaly class this detector raises.
    fn kind(&self) -> AnomalyKind;

    /// Evaluates one closed epoch against its predecessor.
    fn evaluate(&self, cfg: &DetectorConfig, win: &EpochWindow<'_>) -> Vec<Anomaly>;
}

/// Fires when normalized entropy moves by more than
/// [`DetectorConfig::entropy_shift`] between consecutive epochs. The
/// subject is the closed epoch's dominant flow — the most useful single
/// lead for a collapse, and a representative sample for a flood.
#[derive(Debug, Default, Clone, Copy)]
pub struct EntropyShiftDetector;

impl Detector for EntropyShiftDetector {
    fn kind(&self) -> AnomalyKind {
        AnomalyKind::EntropyShift
    }

    fn evaluate(&self, cfg: &DetectorConfig, win: &EpochWindow<'_>) -> Vec<Anomaly> {
        let Some(prev) = win.prev else { return Vec::new() };
        if win.cur.flows() < cfg.min_flows || prev.flows() < cfg.min_flows {
            return Vec::new();
        }
        let delta = win.cur.normalized_entropy() - prev.normalized_entropy();
        if delta.abs() < cfg.entropy_shift {
            return Vec::new();
        }
        let Some(dominant) = win.cur.dominant_flow() else { return Vec::new() };
        vec![Anomaly {
            kind: AnomalyKind::EntropyShift,
            subject: Subject::Flow(dominant),
            score: delta,
            threshold: cfg.entropy_shift,
        }]
    }
}

/// Fires for every source whose distinct-destination fan-out reaches
/// [`DetectorConfig::spreader_fanout`] in the closed epoch.
#[derive(Debug, Default, Clone, Copy)]
pub struct SuperSpreaderDetector;

impl Detector for SuperSpreaderDetector {
    fn kind(&self) -> AnomalyKind {
        AnomalyKind::SuperSpreader
    }

    fn evaluate(&self, cfg: &DetectorConfig, win: &EpochWindow<'_>) -> Vec<Anomaly> {
        rank_fans(&win.cur.fanout, cfg.spreader_fanout, cfg.max_alerts_per_kind)
            .into_iter()
            .map(|(host, peers)| Anomaly {
                kind: AnomalyKind::SuperSpreader,
                subject: Subject::Host(host),
                score: peers as f64,
                threshold: cfg.spreader_fanout as f64,
            })
            .collect()
    }
}

/// Fires for every destination whose distinct-source fan-in reaches
/// [`DetectorConfig::victim_fanin`] in the closed epoch.
#[derive(Debug, Default, Clone, Copy)]
pub struct DdosVictimDetector;

impl Detector for DdosVictimDetector {
    fn kind(&self) -> AnomalyKind {
        AnomalyKind::DdosVictim
    }

    fn evaluate(&self, cfg: &DetectorConfig, win: &EpochWindow<'_>) -> Vec<Anomaly> {
        rank_fans(&win.cur.fanin, cfg.victim_fanin, cfg.max_alerts_per_kind)
            .into_iter()
            .map(|(host, peers)| Anomaly {
                kind: AnomalyKind::DdosVictim,
                subject: Subject::Host(host),
                score: peers as f64,
                threshold: cfg.victim_fanin as f64,
            })
            .collect()
    }
}

/// Hosts whose peer-set size reaches `threshold`, sorted by (count
/// desc, host asc) and truncated to `cap` — the deterministic core both
/// fan detectors share.
fn rank_fans(
    fans: &HashMap<[u8; 4], HashSet<[u8; 4]>>,
    threshold: usize,
    cap: usize,
) -> Vec<([u8; 4], usize)> {
    let mut hits: Vec<([u8; 4], usize)> = fans
        .iter()
        .filter(|(_, peers)| peers.len() >= threshold)
        .map(|(host, peers)| (*host, peers.len()))
        .collect();
    hits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hits.truncate(cap);
    hits
}

/// Fires for every flow whose packet count moved by more than
/// `max(heavy_change_floor, heavy_change_factor x previous)` between
/// consecutive epochs — in either direction (a flow vanishing is as
/// anomalous as one appearing). Silent on the first epoch: there is no
/// baseline to diff against.
#[derive(Debug, Default, Clone, Copy)]
pub struct HeavyChangeDetector;

impl Detector for HeavyChangeDetector {
    fn kind(&self) -> AnomalyKind {
        AnomalyKind::HeavyChange
    }

    fn evaluate(&self, cfg: &DetectorConfig, win: &EpochWindow<'_>) -> Vec<Anomaly> {
        let Some(prev) = win.prev else { return Vec::new() };
        let mut changes: Vec<(FlowKey, f64, f64)> = Vec::new();
        let mut consider = |key: FlowKey, before: f64, after: f64| {
            let delta = after - before;
            // Relative to the *persisting* baseline (the smaller count),
            // so a vanished flow is judged against the floor, not
            // against its own former size.
            let threshold = cfg.heavy_change_floor.max(cfg.heavy_change_factor * before.min(after));
            if delta.abs() >= threshold {
                changes.push((key, delta, threshold));
            }
        };
        for (key, &pkts) in &win.cur.flow_packets {
            consider(*key, prev.packets_of(key), pkts);
        }
        for (key, &pkts) in &prev.flow_packets {
            if !win.cur.flow_packets.contains_key(key) {
                consider(*key, pkts, 0.0);
            }
        }
        changes.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));
        changes.truncate(cfg.max_alerts_per_kind);
        changes
            .into_iter()
            .map(|(key, delta, threshold)| Anomaly {
                kind: AnomalyKind::HeavyChange,
                subject: Subject::Flow(key),
                score: delta,
                threshold,
            })
            .collect()
    }
}

/// A fixed, ordered set of detectors sharing one config.
pub struct DetectorSuite {
    cfg: DetectorConfig,
    detectors: Vec<Box<dyn Detector>>,
}

impl DetectorSuite {
    /// The standard four-detector suite in wire-code order.
    #[must_use]
    pub fn standard(cfg: DetectorConfig) -> Self {
        DetectorSuite {
            cfg,
            detectors: vec![
                Box::new(EntropyShiftDetector),
                Box::new(SuperSpreaderDetector),
                Box::new(DdosVictimDetector),
                Box::new(HeavyChangeDetector),
            ],
        }
    }

    /// The shared thresholds.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Evaluates every detector over one closed epoch; verdicts come
    /// back in detector order, each internally sorted by severity.
    #[must_use]
    pub fn evaluate(
        &self,
        epoch: u64,
        prev: Option<&EpochFeatures>,
        cur: &EpochFeatures,
    ) -> Vec<Anomaly> {
        let win = EpochWindow { epoch, prev, cur };
        self.detectors.iter().flat_map(|d| d.evaluate(&self.cfg, &win)).collect()
    }
}

impl core::fmt::Debug for DetectorSuite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DetectorSuite")
            .field("cfg", &self.cfg)
            .field("detectors", &self.detectors.iter().map(|d| d.kind()).collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstaMeasure, InstaMeasureConfig};
    use instameasure_packet::{PacketRecord, Protocol};

    fn flow(src: [u8; 4], dst: [u8; 4], port: u16) -> FlowKey {
        FlowKey::new(src, dst, port, 80, Protocol::Tcp)
    }

    fn feed(im: &mut InstaMeasure, key: FlowKey, pkts: u64) {
        for t in 0..pkts {
            im.process(&PacketRecord::new(key, 300, t));
        }
    }

    fn features_of(im: &InstaMeasure) -> EpochFeatures {
        let mut f = EpochFeatures::default();
        f.absorb(im.wsaf());
        f
    }

    fn balanced_epoch(seed: u8) -> EpochFeatures {
        let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for i in 0..40u8 {
            feed(&mut im, flow([10, seed, 0, i], [20, seed, 0, i], 1000), 1_500);
        }
        features_of(&im)
    }

    #[test]
    fn kind_codes_roundtrip_and_bits_are_distinct() {
        let mut mask = 0u8;
        for kind in ALL_ANOMALY_KINDS {
            assert_eq!(AnomalyKind::from_code(kind.code()), Some(kind));
            assert_eq!(mask & kind.bit(), 0, "bits must not collide");
            mask |= kind.bit();
        }
        assert_eq!(mask, 0x0F);
        assert_eq!(AnomalyKind::from_code(4), None);
    }

    #[test]
    fn merged_partition_features_equal_single_pass() {
        // Three disjoint measurement shards vs one pass over all three
        // tables: identical flow counts, totals and entropy to the bit.
        let mut ims: Vec<InstaMeasure> = (0..3)
            .map(|_| InstaMeasure::new(InstaMeasureConfig::default().small_for_tests()))
            .collect();
        for (s, im) in ims.iter_mut().enumerate() {
            for i in 0..20u8 {
                feed(im, flow([10, s as u8, 0, i], [20, s as u8, 0, i], 1000), 800);
            }
        }
        let mut merged = EpochFeatures::default();
        for im in &ims {
            let mut part = EpochFeatures::default();
            part.absorb(im.wsaf());
            merged.merge(&part);
        }
        let mut single = EpochFeatures::default();
        for im in &ims {
            single.absorb(im.wsaf());
        }
        assert_eq!(merged.flows(), single.flows());
        assert_eq!(merged.total_packets().to_bits(), single.total_packets().to_bits());
        assert_eq!(merged.normalized_entropy().to_bits(), single.normalized_entropy().to_bits());
    }

    #[test]
    fn entropy_matches_apps_reference() {
        let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        feed(&mut im, flow([10, 0, 0, 1], [20, 0, 0, 1], 1000), 100_000);
        for i in 2..12u8 {
            feed(&mut im, flow([10, 0, 0, i], [20, 0, 0, i], 1000), 700);
        }
        let features = features_of(&im);
        let reference = crate::apps::normalized_entropy(im.wsaf());
        assert!(
            (features.normalized_entropy() - reference).abs() < 1e-9,
            "summary entropy {} vs reference {}",
            features.normalized_entropy(),
            reference
        );
    }

    #[test]
    fn entropy_shift_fires_on_collapse_and_respects_min_flows() {
        let prev = balanced_epoch(1);
        assert!(prev.flows() >= 32, "need a meaningful baseline sample");
        let mut skewed = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        let elephant = flow([66, 0, 0, 1], [77, 0, 0, 1], 9000);
        feed(&mut skewed, elephant, 300_000);
        for i in 0..40u8 {
            feed(&mut skewed, flow([10, 2, 0, i], [20, 2, 0, i], 1000), 400);
        }
        let cur = features_of(&skewed);
        let cfg = DetectorConfig::default();
        let win = EpochWindow { epoch: 1, prev: Some(&prev), cur: &cur };
        let alerts = EntropyShiftDetector.evaluate(&cfg, &win);
        assert_eq!(alerts.len(), 1, "collapse must fire: {alerts:?}");
        assert!(alerts[0].score < 0.0, "collapse direction is negative");
        assert_eq!(alerts[0].subject, Subject::Flow(elephant));

        // No baseline, or a tiny one, keeps the detector silent.
        let silent = EpochWindow { epoch: 0, prev: None, cur: &cur };
        assert!(EntropyShiftDetector.evaluate(&cfg, &silent).is_empty());
        let tiny = EpochFeatures::default();
        let tiny_win = EpochWindow { epoch: 1, prev: Some(&tiny), cur: &cur };
        assert!(EntropyShiftDetector.evaluate(&cfg, &tiny_win).is_empty());
    }

    #[test]
    fn spreader_and_victim_fire_on_fans_and_stay_quiet_on_balance() {
        let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for d in 0..150u8 {
            feed(&mut im, flow([66, 6, 6, 6], [30, 0, 0, d], 3000), 300);
        }
        for b in 0..150u8 {
            feed(&mut im, flow([40, 0, 0, b], [99, 9, 9, 9], 4000), 300);
        }
        let cur = features_of(&im);
        let cfg = DetectorConfig::default();
        let win = EpochWindow { epoch: 0, prev: None, cur: &cur };

        let spread = SuperSpreaderDetector.evaluate(&cfg, &win);
        assert_eq!(spread.len(), 1, "{spread:?}");
        assert_eq!(spread[0].subject, Subject::Host([66, 6, 6, 6]));
        assert!(spread[0].score >= cfg.spreader_fanout as f64);

        let victims = DdosVictimDetector.evaluate(&cfg, &win);
        assert_eq!(victims.len(), 1, "{victims:?}");
        assert_eq!(victims[0].subject, Subject::Host([99, 9, 9, 9]));

        let benign = balanced_epoch(3);
        let benign_win = EpochWindow { epoch: 0, prev: None, cur: &benign };
        assert!(SuperSpreaderDetector.evaluate(&cfg, &benign_win).is_empty());
        assert!(DdosVictimDetector.evaluate(&cfg, &benign_win).is_empty());
    }

    #[test]
    fn heavy_change_fires_both_directions_and_needs_a_baseline() {
        let quiet = balanced_epoch(4);
        let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        let surge = flow([50, 0, 0, 1], [60, 0, 0, 1], 7000);
        feed(&mut im, surge, 80_000);
        for i in 0..40u8 {
            feed(&mut im, flow([10, 4, 0, i], [20, 4, 0, i], 1000), 1_500);
        }
        let cur = features_of(&im);
        let cfg = DetectorConfig { max_alerts_per_kind: 64, ..DetectorConfig::default() };

        let win = EpochWindow { epoch: 1, prev: Some(&quiet), cur: &cur };
        let ups = HeavyChangeDetector.evaluate(&cfg, &win);
        assert!(
            ups.iter().any(|a| a.subject == Subject::Flow(surge) && a.score > 0.0),
            "surge must register as an upward change: {ups:?}"
        );
        // The surge is the largest |delta|, so it sorts first.
        assert_eq!(ups[0].subject, Subject::Flow(surge));

        let rev = EpochWindow { epoch: 2, prev: Some(&cur), cur: &quiet };
        let downs = HeavyChangeDetector.evaluate(&cfg, &rev);
        assert!(
            downs.iter().any(|a| a.subject == Subject::Flow(surge) && a.score < 0.0),
            "a vanished surge must register as a downward change: {downs:?}"
        );

        let first = EpochWindow { epoch: 0, prev: None, cur: &cur };
        assert!(HeavyChangeDetector.evaluate(&cfg, &first).is_empty());
    }

    #[test]
    fn heavy_change_is_quiet_on_a_steady_epoch_pair() {
        let a = balanced_epoch(5);
        let b = balanced_epoch(5);
        let cfg = DetectorConfig::default();
        let win = EpochWindow { epoch: 1, prev: Some(&a), cur: &b };
        assert!(HeavyChangeDetector.evaluate(&cfg, &win).is_empty());
    }

    #[test]
    fn suite_runs_every_detector_and_caps_verdicts() {
        let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for d in 0..200u8 {
            feed(&mut im, flow([66, 6, 6, 6], [30, 0, 0, d], 3000), 300);
        }
        let cur = features_of(&im);
        let cfg = DetectorConfig { max_alerts_per_kind: 2, ..DetectorConfig::default() };
        let suite = DetectorSuite::standard(cfg);
        let alerts = suite.evaluate(0, None, &cur);
        assert!(alerts.iter().any(|a| a.kind == AnomalyKind::SuperSpreader));
        for kind in ALL_ANOMALY_KINDS {
            assert!(
                alerts.iter().filter(|a| a.kind == kind).count() <= 2,
                "per-kind cap violated for {kind}"
            );
        }
        // Determinism: the same inputs give the same verdict list.
        assert_eq!(alerts, suite.evaluate(0, None, &cur));
    }
}
