//! Accuracy metrics used by the evaluation figures.

use std::collections::HashSet;

use instameasure_packet::FlowKey;

/// Relative error `|est − truth| / truth`.
///
/// A zero truth has no finite relative scale: the function is total and
/// returns `0.0` for an exact zero estimate and [`f64::INFINITY`] for any
/// other estimate (callers normally bucket flows by true size first, so
/// zero-truth flows only reach this through degenerate traces — they must
/// not abort a whole evaluation run).
#[must_use]
pub fn relative_error(est: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return if est == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (est - truth).abs() / truth
}

/// Mean relative error over `(estimate, truth)` pairs; `None` when empty.
#[must_use]
pub fn mean_relative_error(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    Some(pairs.iter().map(|&(e, t)| relative_error(e, t)).sum::<f64>() / pairs.len() as f64)
}

/// Standard error of the relative deviations — the metric of paper
/// Fig. 13: `sqrt( Σ ((est−truth)/truth)² / n )`.
///
/// Zero-truth pairs follow [`relative_error`]'s convention: an exact zero
/// estimate contributes nothing, any other estimate makes the result
/// infinite rather than NaN.
#[must_use]
pub fn standard_error(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    let sum_sq: f64 = pairs
        .iter()
        .map(|&(e, t)| {
            let d = relative_error(e, t);
            d * d
        })
        .sum();
    Some((sum_sq / pairs.len() as f64).sqrt())
}

/// A flow-size bucket: flows whose *true* count lies in `[min, max)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeBucket {
    /// Inclusive lower bound on the true count.
    pub min: u64,
    /// Exclusive upper bound (`u64::MAX` for the open top bucket).
    pub max: u64,
    /// Human-readable label, e.g. `"10K+"`.
    pub label: &'static str,
}

impl SizeBucket {
    /// Whether `size` falls in this bucket.
    #[must_use]
    pub fn contains(&self, size: u64) -> bool {
        size >= self.min && size < self.max
    }
}

/// The paper's three packet-count buckets (Fig. 10), scaled by `scale`
/// (the paper uses 10K+/100K+/1000K+ on a 3.7 B-packet trace; a scaled
/// trace scales the buckets identically so the *shape* comparison holds).
#[must_use]
pub fn paper_packet_buckets(scale: f64) -> [SizeBucket; 3] {
    let s = |v: f64| (v * scale).max(1.0) as u64;
    [
        SizeBucket { min: s(10_000.0), max: s(100_000.0), label: "10K+" },
        SizeBucket { min: s(100_000.0), max: s(1_000_000.0), label: "100K+" },
        SizeBucket { min: s(1_000_000.0), max: u64::MAX, label: "1000K+" },
    ]
}

/// Mean relative error per bucket: `estimates` supplies the measured value
/// for each `(flow, true_count)`; flows are grouped by their true count.
/// Buckets with no flows yield `None`.
pub fn error_by_bucket(
    flows: &[(FlowKey, u64)],
    buckets: &[SizeBucket],
    mut estimate: impl FnMut(&FlowKey) -> f64,
) -> Vec<Option<f64>> {
    let mut sums = vec![(0.0f64, 0usize); buckets.len()];
    for (key, truth) in flows {
        if let Some(bi) = buckets.iter().position(|b| b.contains(*truth)) {
            let err = relative_error(estimate(key), *truth as f64);
            sums[bi].0 += err;
            sums[bi].1 += 1;
        }
    }
    sums.into_iter().map(|(sum, n)| if n == 0 { None } else { Some(sum / n as f64) }).collect()
}

/// Top-K recall: the fraction of the true top-K found in the measured
/// top-K (the metric of Figs. 10/11's recall panels).
///
/// Returns 1.0 when the true set is empty.
#[must_use]
pub fn top_k_recall(measured: &[FlowKey], truth: &[FlowKey]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let measured_set: HashSet<&FlowKey> = measured.iter().collect();
    let hit = truth.iter().filter(|k| measured_set.contains(k)).count();
    hit as f64 / truth.len() as f64
}

/// False-positive / false-negative rates for a detection task
/// (paper Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionRates {
    /// Detected flows that are not true positives, over all true
    /// negatives.
    pub false_positive: f64,
    /// Missed true flows, over all true positives.
    pub false_negative: f64,
    /// True heavy hitters.
    pub positives: usize,
    /// Flows that are not heavy hitters.
    pub negatives: usize,
}

/// Computes FP/FN rates: `detected` vs `truth` over a universe of
/// `total_flows` flows.
///
/// # Panics
///
/// Panics if `total_flows` is smaller than the true positive count.
#[must_use]
pub fn detection_rates(
    detected: &HashSet<FlowKey>,
    truth: &HashSet<FlowKey>,
    total_flows: usize,
) -> DetectionRates {
    assert!(total_flows >= truth.len(), "universe smaller than positives");
    let fp = detected.difference(truth).count();
    let fnn = truth.difference(detected).count();
    let negatives = total_flows - truth.len();
    DetectionRates {
        false_positive: if negatives == 0 { 0.0 } else { fp as f64 / negatives as f64 },
        false_negative: if truth.is_empty() { 0.0 } else { fnn as f64 / truth.len() as f64 },
        positives: truth.len(),
        negatives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [0, 0, 0, 9], 1, 1, Protocol::Tcp)
    }

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn relative_error_zero_truth_is_total() {
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        // The convention propagates: one impossible flow poisons the
        // aggregate to infinity instead of panicking or yielding NaN.
        let se = standard_error(&[(1.0, 0.0), (100.0, 100.0)]).unwrap();
        assert_eq!(se, f64::INFINITY);
        assert_eq!(standard_error(&[(0.0, 0.0)]).unwrap(), 0.0);
        let mre = mean_relative_error(&[(1.0, 0.0)]).unwrap();
        assert_eq!(mre, f64::INFINITY);
    }

    #[test]
    fn mean_and_standard_error() {
        let pairs = [(110.0, 100.0), (95.0, 100.0)];
        assert!((mean_relative_error(&pairs).unwrap() - 0.075).abs() < 1e-12);
        // RMS of (0.1, 0.05) = sqrt(0.0125/2)
        let se = standard_error(&pairs).unwrap();
        assert!((se - (0.0125f64 / 2.0).sqrt()).abs() < 1e-12);
        assert!(mean_relative_error(&[]).is_none());
        assert!(standard_error(&[]).is_none());
    }

    #[test]
    fn buckets_partition_sizes() {
        let buckets = paper_packet_buckets(1.0);
        assert!(buckets[0].contains(10_000));
        assert!(buckets[0].contains(99_999));
        assert!(!buckets[0].contains(100_000));
        assert!(buckets[1].contains(100_000));
        assert!(buckets[2].contains(5_000_000));
        assert!(!buckets[0].contains(9_999));
        // Scaled buckets shrink proportionally.
        let small = paper_packet_buckets(0.01);
        assert_eq!(small[0].min, 100);
        assert_eq!(small[2].min, 10_000);
    }

    #[test]
    fn error_by_bucket_groups_flows() {
        let buckets = paper_packet_buckets(1.0);
        let flows = vec![(key(1), 20_000u64), (key(2), 200_000), (key(3), 50)];
        let errs = error_by_bucket(&flows, &buckets, |k| {
            // 10% overestimate everywhere.
            let truth = flows.iter().find(|(fk, _)| fk == k).unwrap().1 as f64;
            truth * 1.1
        });
        assert!((errs[0].unwrap() - 0.1).abs() < 1e-9);
        assert!((errs[1].unwrap() - 0.1).abs() < 1e-9);
        assert!(errs[2].is_none(), "no 1000K+ flows");
    }

    #[test]
    fn recall_counts_intersection() {
        let measured = vec![key(1), key(2), key(3)];
        let truth = vec![key(2), key(3), key(4)];
        assert!((top_k_recall(&measured, &truth) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(top_k_recall(&measured, &[]), 1.0);
        assert_eq!(top_k_recall(&[], &truth), 0.0);
    }

    #[test]
    fn detection_rates_fp_fn() {
        let detected: HashSet<_> = [key(1), key(2), key(5)].into_iter().collect();
        let truth: HashSet<_> = [key(1), key(2), key(3)].into_iter().collect();
        let r = detection_rates(&detected, &truth, 103);
        assert!((r.false_positive - 1.0 / 100.0).abs() < 1e-12, "1 FP over 100 negatives");
        assert!((r.false_negative - 1.0 / 3.0).abs() < 1e-12, "1 FN over 3 positives");
        assert_eq!(r.positives, 3);
        assert_eq!(r.negatives, 100);
    }

    #[test]
    fn detection_rates_empty_cases() {
        let empty = HashSet::new();
        let r = detection_rates(&empty, &empty, 0);
        assert_eq!(r.false_positive, 0.0);
        assert_eq!(r.false_negative, 0.0);
    }
}
