//! Deployment planning: pick a FlowRegulator configuration for a link.
//!
//! §V-B of the paper: "Even for WSAF in TCAM, which is faster than SRAM,
//! FlowRegulator can be configured to have enough margin by adjusting the
//! vector size or even the number of layers." This module turns that
//! remark into an API: given the link's packet rate, the WSAF's memory
//! technology and a sample of the workload's flow sizes, it searches the
//! (vector-size × layer-count) space with the exact chain model
//! ([`instameasure_sketch::analysis`]) and returns the *cheapest* plan
//! whose predicted insertion rate leaves the requested safety margin —
//! preferring fewer layers (better accuracy; see the ablations) and
//! smaller vectors (less memory) among feasible plans.

use instameasure_memmodel::{MarginAnalysis, MemoryTechnology};
use instameasure_sketch::{analysis, SketchConfig};

/// A recommended FlowRegulator deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// Per-layer vector size in bits.
    pub vector_bits: u32,
    /// Number of layers (1 = plain RCC, 2 = the paper's design, 3+ =
    /// TCAM-margin cascades).
    pub layers: u32,
    /// Predicted insertion rate into the WSAF (ips/pps).
    pub predicted_regulation: f64,
    /// Capacity-over-demand margin at the given technology (≥ the
    /// requested minimum).
    pub margin: f64,
}

/// Searches for the cheapest feasible FlowRegulator configuration.
///
/// * `pps` — the link's packet rate the deployment must sustain.
/// * `technology` — where the WSAF lives (each insertion is modeled as
///   two memory accesses: probe + write).
/// * `workload_sizes` — a representative sample of per-flow packet counts
///   (e.g. from a prior measurement window); the regulation prediction is
///   workload-dependent because mice never reach the WSAF.
/// * `min_margin` — required capacity/demand headroom (the paper argues
///   for comfortable margins; 2–10× is typical).
///
/// Returns `None` if no configuration in the search space (b ∈ {4, 8,
/// 16, 32}, layers ∈ 1..=4) reaches the margin.
///
/// # Example
///
/// ```
/// use instameasure_core::planner::plan_regulator;
/// use instameasure_memmodel::MemoryTechnology;
///
/// let sizes = vec![1u64; 1000]; // all mice: anything works
/// let plan = plan_regulator(1.0e6, MemoryTechnology::Dram, &sizes, 2.0).unwrap();
/// assert_eq!(plan.layers, 1, "mice-only traffic doesn't even need layer 2");
/// ```
#[must_use]
pub fn plan_regulator(
    pps: f64,
    technology: MemoryTechnology,
    workload_sizes: &[u64],
    min_margin: f64,
) -> Option<Plan> {
    // Prefer fewer layers (accuracy), then smaller vectors (memory).
    for layers in 1..=4u32 {
        for vector_bits in [4u32, 8, 16, 32] {
            let cfg = SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(vector_bits)
                .build()
                .expect("search space configs are valid");
            let rate = analysis::expected_regulation_rate(&cfg, workload_sizes, layers);
            let margin = MarginAnalysis::new(pps, rate.min(1.0), technology)
                .with_probes_per_insert(2.0)
                .margin();
            if margin >= min_margin {
                return Some(Plan { vector_bits, layers, predicted_regulation: rate, margin });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Zipf-ish elephant-heavy workload sample.
    fn heavy_sizes() -> Vec<u64> {
        (1..=5000u64).map(|i| (200_000 / i).max(1)).collect()
    }

    #[test]
    fn dram_at_campus_rates_needs_one_or_two_layers() {
        // 1 Gbps campus uplink (~150 kpps mixed sizes): DRAM absorbs even
        // a single-layer RCC.
        let plan = plan_regulator(150e3, MemoryTechnology::Dram, &heavy_sizes(), 2.0).unwrap();
        assert!(plan.layers <= 2, "{plan:?}");
        assert!(plan.margin >= 2.0);
    }

    #[test]
    fn dram_at_line_rate_needs_the_two_layer_design() {
        // 100 GbE worst case (~148.8 Mpps) with a 5x safety margin: no
        // single-layer vector in the search space suffices in DRAM; the
        // paper's multi-layer design does.
        let plan = plan_regulator(148.8e6, MemoryTechnology::Dram, &heavy_sizes(), 5.0).unwrap();
        assert!(plan.layers >= 2, "{plan:?}");
        assert!(plan.predicted_regulation < 0.01, "{plan:?}");
    }

    #[test]
    fn faster_memory_affords_shallower_plans() {
        let sizes = heavy_sizes();
        let dram = plan_regulator(59.5e6, MemoryTechnology::Dram, &sizes, 2.0).unwrap();
        let tcam = plan_regulator(59.5e6, MemoryTechnology::Tcam, &sizes, 2.0).unwrap();
        // TCAM tolerates a higher insertion rate, so its plan is never
        // deeper than DRAM's.
        assert!(
            (tcam.layers, tcam.vector_bits) <= (dram.layers, dram.vector_bits),
            "tcam {tcam:?} vs dram {dram:?}"
        );
    }

    #[test]
    fn extreme_demands_may_be_infeasible() {
        // An absurd margin at an absurd rate: nothing in the search space
        // can promise 10^6x headroom on elephant-only traffic.
        let elephant_only = vec![1_000_000u64; 10];
        let plan = plan_regulator(1e9, MemoryTechnology::Dram, &elephant_only, 1e6);
        assert!(plan.is_none());
    }

    #[test]
    fn predicted_regulation_decreases_with_layers_in_the_plan_space() {
        let sizes = heavy_sizes();
        let cfg = |b: u32| {
            SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(b).build().unwrap()
        };
        let r1 = analysis::expected_regulation_rate(&cfg(8), &sizes, 1);
        let r2 = analysis::expected_regulation_rate(&cfg(8), &sizes, 2);
        let r3 = analysis::expected_regulation_rate(&cfg(8), &sizes, 3);
        assert!(r1 > r2 && r2 > r3);
    }
}
