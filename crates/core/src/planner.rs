//! Deployment planning: pick a FlowRegulator configuration for a link.
//!
//! §V-B of the paper: "Even for WSAF in TCAM, which is faster than SRAM,
//! FlowRegulator can be configured to have enough margin by adjusting the
//! vector size or even the number of layers." This module turns that
//! remark into an API: given the link's packet rate, the WSAF's memory
//! technology and a sample of the workload's flow sizes, it searches the
//! (vector-size × layer-count) space with the exact chain model
//! ([`instameasure_sketch::analysis`]) and returns the *cheapest* plan
//! whose predicted insertion rate leaves the requested safety margin —
//! preferring fewer layers (better accuracy; see the ablations) and
//! smaller vectors (less memory) among feasible plans.

use instameasure_memmodel::{MarginAnalysis, MemoryTechnology};
use instameasure_sketch::{analysis, SketchConfig};

/// A recommended FlowRegulator deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// Per-layer vector size in bits.
    pub vector_bits: u32,
    /// Number of layers (1 = plain RCC, 2 = the paper's design, 3+ =
    /// TCAM-margin cascades).
    pub layers: u32,
    /// Predicted insertion rate into the WSAF (ips/pps).
    pub predicted_regulation: f64,
    /// Capacity-over-demand margin at the given technology (≥ the
    /// requested minimum).
    pub margin: f64,
}

/// Searches for the cheapest feasible FlowRegulator configuration.
///
/// * `pps` — the link's packet rate the deployment must sustain.
/// * `technology` — where the WSAF (and every regulator layer beyond
///   layer 1) lives. Accesses per insertion follow the actual probe
///   chain of the configured layer count
///   ([`analysis::expected_probes_per_insert`]), not a blanket constant:
///   each layer-`k` saturation costs a slow access to layer `k+1`, and
///   the insertion itself costs a probe plus a write.
/// * `workload_sizes` — a representative sample of per-flow packet counts
///   (e.g. from a prior measurement window); the regulation prediction is
///   workload-dependent because mice never reach the WSAF.
/// * `min_margin` — required capacity/demand headroom (the paper argues
///   for comfortable margins; 2–10× is typical).
///
/// Returns `None` if no configuration in the search space (b ∈ {4, 8,
/// 16, 32}, layers ∈ 1..=4) reaches the margin.
///
/// # Example
///
/// ```
/// use instameasure_core::planner::plan_regulator;
/// use instameasure_memmodel::MemoryTechnology;
///
/// let sizes = vec![1u64; 1000]; // all mice: anything works
/// let plan = plan_regulator(1.0e6, MemoryTechnology::Dram, &sizes, 2.0).unwrap();
/// assert_eq!(plan.layers, 1, "mice-only traffic doesn't even need layer 2");
/// ```
#[must_use]
pub fn plan_regulator(
    pps: f64,
    technology: MemoryTechnology,
    workload_sizes: &[u64],
    min_margin: f64,
) -> Option<Plan> {
    plan_with(pps, technology, None, workload_sizes, min_margin)
}

/// [`plan_regulator`] against a *measured* random-access latency instead
/// of a technology's paper constant — the entry point the auto-tuner uses
/// once a machine profile has been calibrated. `access_nanos` is the
/// effective random-access latency (ns) of the memory holding the WSAF at
/// its working-set size.
///
/// # Panics
///
/// Panics if `access_nanos` is not finite and positive.
#[must_use]
pub fn plan_regulator_measured(
    pps: f64,
    access_nanos: f64,
    workload_sizes: &[u64],
    min_margin: f64,
) -> Option<Plan> {
    plan_with(pps, MemoryTechnology::Dram, Some(access_nanos), workload_sizes, min_margin)
}

fn plan_with(
    pps: f64,
    technology: MemoryTechnology,
    access_nanos: Option<f64>,
    workload_sizes: &[u64],
    min_margin: f64,
) -> Option<Plan> {
    // Prefer fewer layers (accuracy), then smaller vectors (memory).
    for layers in 1..=4u32 {
        for vector_bits in [4u32, 8, 16, 32] {
            let cfg = SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(vector_bits)
                .build()
                .expect("search space configs are valid");
            let rate = analysis::expected_regulation_rate(&cfg, workload_sizes, layers);
            // Deep wide cascades can truncate the noise-free expectation to
            // literally zero insertions while layer 1 still saturates — an
            // artifact of the chain model, not a real design point (noise
            // leaks in practice, and a WSAF that never learns anything has
            // infinite margin and zero value). Skip those candidates; a
            // genuinely mice-only workload (zero even at one layer) still
            // planes out at the cheapest config.
            if rate <= 0.0 && analysis::expected_regulation_rate(&cfg, workload_sizes, 1) > 0.0 {
                continue;
            }
            let probes = analysis::expected_probes_per_insert(&cfg, workload_sizes, layers);
            let mut m = MarginAnalysis::new(pps, rate.min(1.0), technology)
                .with_probes_per_insert(probes.max(1.0));
            if let Some(ns) = access_nanos {
                m = m.with_access_nanos(ns);
            }
            let margin = m.margin();
            if margin >= min_margin {
                return Some(Plan { vector_bits, layers, predicted_regulation: rate, margin });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Zipf-ish elephant-heavy workload sample.
    fn heavy_sizes() -> Vec<u64> {
        (1..=5000u64).map(|i| (200_000 / i).max(1)).collect()
    }

    #[test]
    fn dram_at_campus_rates_needs_one_or_two_layers() {
        // 1 Gbps campus uplink (~150 kpps mixed sizes): DRAM absorbs even
        // a single-layer RCC.
        let plan = plan_regulator(150e3, MemoryTechnology::Dram, &heavy_sizes(), 2.0).unwrap();
        assert!(plan.layers <= 2, "{plan:?}");
        assert!(plan.margin >= 2.0);
    }

    #[test]
    fn dram_at_line_rate_needs_the_two_layer_design() {
        // 100 GbE worst case (~148.8 Mpps): no single-layer vector in the
        // search space suffices in DRAM; the paper's two-layer design with
        // the widest vectors does. Under the honest probe-chain model the
        // layer-2 feed rate is itself a DRAM cost, so the margin is a
        // hard-won 2x rather than the old constant model's comfortable 5x.
        let plan = plan_regulator(148.8e6, MemoryTechnology::Dram, &heavy_sizes(), 2.0).unwrap();
        assert!(plan.layers >= 2, "{plan:?}");
        assert!(plan.vector_bits >= 16, "{plan:?}");
        assert!(plan.predicted_regulation < 0.01, "{plan:?}");
    }

    #[test]
    fn line_rate_dram_cannot_promise_deep_margins_but_tcam_can() {
        // The probe-chain model exposes what the blanket two-access
        // constant hid: every deeper layer lives in the same memory as the
        // WSAF, so depth cannot buy a 5x DRAM margin at 148.8 Mpps...
        let dram = plan_regulator(148.8e6, MemoryTechnology::Dram, &heavy_sizes(), 5.0);
        assert!(dram.is_none(), "{dram:?}");
        // ...while a TCAM WSAF reaches it with the cheapest config.
        let tcam = plan_regulator(148.8e6, MemoryTechnology::Tcam, &heavy_sizes(), 5.0).unwrap();
        assert_eq!(tcam.layers, 1, "{tcam:?}");
    }

    #[test]
    fn measured_latency_shifts_the_plan() {
        let sizes = heavy_sizes();
        // A host whose DRAM measures twice the paper constant needs a more
        // aggressive (never cheaper) plan at the same demand.
        let paper = plan_regulator(59.5e6, MemoryTechnology::Dram, &sizes, 2.0).unwrap();
        let slow = plan_regulator_measured(59.5e6, 160.0, &sizes, 2.0).unwrap();
        assert!(
            (slow.layers, slow.vector_bits) >= (paper.layers, paper.vector_bits),
            "slow {slow:?} vs paper {paper:?}"
        );
        // And a measured 80 ns reproduces the paper-constant geometry (the
        // float rate/margin fields can differ in the last ulp because the
        // workload grouping sums in hash order).
        let same = plan_regulator_measured(59.5e6, 80.0, &sizes, 2.0).unwrap();
        assert_eq!((same.layers, same.vector_bits), (paper.layers, paper.vector_bits));
    }

    #[test]
    fn faster_memory_affords_shallower_plans() {
        let sizes = heavy_sizes();
        let dram = plan_regulator(59.5e6, MemoryTechnology::Dram, &sizes, 2.0).unwrap();
        let tcam = plan_regulator(59.5e6, MemoryTechnology::Tcam, &sizes, 2.0).unwrap();
        // TCAM tolerates a higher insertion rate, so its plan is never
        // deeper than DRAM's.
        assert!(
            (tcam.layers, tcam.vector_bits) <= (dram.layers, dram.vector_bits),
            "tcam {tcam:?} vs dram {dram:?}"
        );
    }

    #[test]
    fn extreme_demands_may_be_infeasible() {
        // An absurd margin at an absurd rate: nothing in the search space
        // can promise 10^6x headroom on elephant-only traffic.
        let elephant_only = vec![1_000_000u64; 10];
        let plan = plan_regulator(1e9, MemoryTechnology::Dram, &elephant_only, 1e6);
        assert!(plan.is_none());
    }

    #[test]
    fn predicted_regulation_decreases_with_layers_in_the_plan_space() {
        let sizes = heavy_sizes();
        let cfg = |b: u32| {
            SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(b).build().unwrap()
        };
        let r1 = analysis::expected_regulation_rate(&cfg(8), &sizes, 1);
        let r2 = analysis::expected_regulation_rate(&cfg(8), &sizes, 2);
        let r3 = analysis::expected_regulation_rate(&cfg(8), &sizes, 3);
        assert!(r1 > r2 && r2 > r3);
    }
}
