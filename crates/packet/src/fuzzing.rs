//! Shared fuzz-target bodies.
//!
//! The actual `cargo fuzz` targets under `fuzz/fuzz_targets/` are one-line
//! wrappers around these functions, and `tests/fuzz_smoke.rs` drives the
//! same bodies for a bounded number of iterations in ordinary CI. Keeping
//! the bodies in-crate means the invariants are exercised even where
//! cargo-fuzz (nightly + libfuzzer) is not installed.
//!
//! Every function here upholds one contract: **arbitrary input bytes must
//! produce `Ok`/`Err`, never a panic, overflow, or out-of-bounds access** —
//! and where two implementations exist (owned-buffer vs zero-copy pcap
//! readers), they must agree byte for byte.

use crate::chunk::{parse_packet_view, PcapChunkReader};
use crate::pcap::{PcapError, PcapReader};
use crate::{FlowKey, PacketRecord, Protocol};

/// Feeds arbitrary bytes to every header parser in the crate. Parsers must
/// reject garbage with an error, not a panic.
pub fn fuzz_headers(data: &[u8]) {
    let _ = crate::parse::parse_ethernet(data);
    let _ = crate::ipv6::parse_ipv6(data);
    // Sub-slices exercise the length-dependent branches (VLAN tags, IPv4
    // options, IPv6 extension chains) at every boundary near the front.
    for cut in 0..data.len().min(96) {
        let _ = crate::parse::parse_ethernet(&data[cut..]);
    }
}

/// Differential check: parsing a borrowed view of arbitrary bytes must
/// agree with the owned-buffer parser — same success/failure, same record.
pub fn fuzz_parse_packet_view(data: &[u8]) {
    let view = crate::chunk::PacketView { ts_nanos: 7_000, orig_len: 1_000_000, data };
    let null_key = FlowKey::new([0; 4], [0; 4], 0, 0, Protocol::Other(0));
    let mut out = PacketRecord::new(null_key, 0, 0);
    let borrowed = parse_packet_view(&view, 2_000, &mut out);
    let owned = crate::parse::parse_ethernet(data);
    match (borrowed, owned) {
        (Ok(()), Ok(parsed)) => {
            assert_eq!(out.key, parsed.key);
            assert_eq!(out.wire_len, u16::MAX, "orig_len above u16 must clamp");
            assert_eq!(out.ts_nanos, 5_000, "timestamp must rebase against base_ts");
        }
        (Err(b), Err(o)) => assert_eq!(b, o, "view and owned parsers disagree on error"),
        (b, o) => panic!("parse divergence: view={b:?} owned={o:?}"),
    }
}

/// Packet sequence `(ts, orig_len, body)` plus how the stream ended.
type Drained = (Vec<(u64, u32, Vec<u8>)>, Option<String>);

/// Drains a pcap byte stream through the owned-buffer reader, returning the
/// packet sequence and how the stream ended.
fn drain_owned(data: &[u8]) -> Drained {
    let mut out = Vec::new();
    let mut r = match PcapReader::new(data) {
        Ok(r) => r,
        Err(e) => return (out, Some(normalize(e, "truncated-global-header"))),
    };
    loop {
        match r.next_packet() {
            Ok(Some(p)) => out.push((p.ts_nanos, p.orig_len, p.data)),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(normalize(e, "truncated-record-body"))),
        }
    }
}

/// Drains the same bytes through the zero-copy chunk reader at the given
/// chunk size.
fn drain_chunked(data: &[u8], chunk_size: usize) -> Drained {
    let mut out = Vec::new();
    let mut r = match PcapChunkReader::with_chunk_size(data, chunk_size) {
        Ok(r) => r,
        Err(e) => return (out, Some(normalize(e, "truncated-global-header"))),
    };
    loop {
        match r.next_view() {
            Ok(Some(v)) => out.push((v.ts_nanos, v.orig_len, v.data.to_vec())),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(normalize(e, "truncated-record-body"))),
        }
    }
}

/// The owned reader reports data cut short by EOF as `Io(UnexpectedEof)`
/// (it reads from a stream and cannot see the file length); the chunk
/// reader knows the remaining bytes and reports `Format(Truncated)` with
/// exact counts. Both must fail — fold the two spellings together (under
/// `eof_label`, naming what was being read at this call site) so the
/// differential check compares substance, not phrasing.
fn normalize(e: PcapError, eof_label: &str) -> String {
    match &e {
        PcapError::Io(io) if io.kind() == std::io::ErrorKind::UnexpectedEof => {
            eof_label.to_string()
        }
        PcapError::Format(crate::ParseError::Truncated { layer: "pcap-record-body", .. }) => {
            "truncated-record-body".to_string()
        }
        PcapError::Format(crate::ParseError::Truncated { layer: "pcap-global-header", .. }) => {
            "truncated-global-header".to_string()
        }
        _ => e.to_string(),
    }
}

/// Differential check over full pcap streams: the owned-buffer reader and
/// the zero-copy reader (at several adversarial chunk sizes) must yield the
/// same packet sequence and agree on whether the stream ends cleanly.
pub fn fuzz_pcap_stream(data: &[u8]) {
    let (owned_pkts, owned_end) = drain_owned(data);
    for chunk_size in [1usize, 7, 64, 4096] {
        let (chunk_pkts, chunk_end) = drain_chunked(data, chunk_size);
        assert_eq!(owned_pkts, chunk_pkts, "packet sequence diverged at chunk_size={chunk_size}");
        assert_eq!(
            owned_end.is_none(),
            chunk_end.is_none(),
            "terminal state diverged at chunk_size={chunk_size}: owned={owned_end:?} chunk={chunk_end:?}"
        );
        if let (Some(o), Some(c)) = (&owned_end, &chunk_end) {
            assert_eq!(o, c, "error diverged at chunk_size={chunk_size}");
        }
    }
}

/// Differential check over the SIMD hot-path kernels: for keys and seeds
/// derived from arbitrary bytes, the batched digest/lane entry points
/// (which dispatch to AVX2 where available) must agree bit for bit with
/// the one-at-a-time scalar functions they vectorize — at every prefix
/// length, so ragged sub-lane tails are hit on each input.
pub fn fuzz_simd_kernels(data: &[u8]) {
    let mut seed_bytes = [0u8; 8];
    for (i, b) in data.iter().take(8).enumerate() {
        seed_bytes[i] = *b;
    }
    let seed = u64::from_le_bytes(seed_bytes);
    // 13-byte windows become flow keys (the full key width), so every
    // input byte influences some lane's hash input.
    let records: Vec<PacketRecord> = data
        .chunks(13)
        .take(256)
        .map(|c| {
            let mut k = [0u8; 13];
            k[..c.len()].copy_from_slice(c);
            let key = FlowKey::new(
                [k[0], k[1], k[2], k[3]],
                [k[4], k[5], k[6], k[7]],
                u16::from_le_bytes([k[8], k[9]]),
                u16::from_le_bytes([k[10], k[11]]),
                Protocol::Other(k[12]),
            );
            PacketRecord::new(key, 64, 0)
        })
        .collect();

    let mut digests = Vec::new();
    let mut lanes = Vec::new();
    let mut digests2 = Vec::new();
    let mut lanes2 = Vec::new();
    // Short prefixes pin the scalar-tail boundary; the full slice covers
    // the wide case.
    let n = records.len();
    for len in (0..=n.min(9)).chain([n]) {
        let slice = &records[..len];
        crate::simd::digest_lanes_into(slice, seed, &mut digests, &mut lanes);
        assert_eq!(digests.len(), len, "digest count diverged at len {len}");
        assert_eq!(lanes.len(), len, "lane count diverged at len {len}");
        for (i, rec) in slice.iter().enumerate() {
            let d = crate::FlowDigest::of(&rec.key);
            assert_eq!(digests[i], d, "digest {i} of {len} diverged from scalar");
            assert_eq!(lanes[i], d.lane(seed), "lane {i} of {len} diverged from scalar");
        }
        // The two-step entry points must agree with the fused one.
        crate::simd::digest_records_into(slice, &mut digests2);
        crate::simd::lane_hashes_into(&digests2, seed, &mut lanes2);
        assert_eq!(digests, digests2, "fused and two-step digests diverged at len {len}");
        assert_eq!(lanes, lanes2, "fused and two-step lanes diverged at len {len}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::{PcapWriter, TsResolution};
    use crate::synth::synthesize_frame;

    #[test]
    fn bodies_accept_valid_and_corrupt_inputs() {
        let key = FlowKey::new([10, 0, 0, 1], [10, 0, 0, 2], 4242, 443, Protocol::Udp);
        let rec = PacketRecord::new(key, 900, 77);
        let frame = synthesize_frame(&rec);
        fuzz_headers(&frame);
        fuzz_parse_packet_view(&frame);
        fuzz_simd_kernels(&frame);
        for cut in 0..frame.len() {
            fuzz_simd_kernels(&frame[..cut]);
        }

        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
        w.write_packet(5, &frame).unwrap();
        w.into_inner().unwrap();
        fuzz_pcap_stream(&file);
        // Truncations at every prefix must not diverge or panic either.
        for cut in 0..file.len() {
            fuzz_pcap_stream(&file[..cut]);
        }
    }
}
