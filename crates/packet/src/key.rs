//! Flow keys and per-packet records.

use core::fmt;

/// Transport protocol carried in the IPv4 header.
///
/// The three protocols the paper's datasets contain (TCP, UDP, ICMP) get
/// dedicated variants; anything else is preserved verbatim in
/// [`Protocol::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Protocol {
    /// TCP (IP protocol number 6).
    Tcp,
    /// UDP (IP protocol number 17).
    Udp,
    /// ICMP (IP protocol number 1).
    Icmp,
    /// Any other IP protocol, identified by its protocol number.
    Other(u8),
}

impl Protocol {
    /// Builds a `Protocol` from the raw IPv4 protocol number.
    #[must_use]
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }

    /// Returns the raw IPv4 protocol number.
    #[must_use]
    pub fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

impl From<u8> for Protocol {
    fn from(n: u8) -> Self {
        Protocol::from_number(n)
    }
}

/// The L4 5-tuple identifying a flow: source/destination IPv4 address,
/// source/destination port and transport protocol — 104 bits, matching the
/// WSAF entry layout in the paper (§IV-D).
///
/// For ICMP and other port-less protocols the port fields are zero.
///
/// # Example
///
/// ```
/// use instameasure_packet::{FlowKey, Protocol};
/// let k = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 1234, 80, Protocol::Tcp);
/// assert_eq!(k.to_bytes().len(), 13); // 104 bits
/// assert_eq!(FlowKey::from_bytes(k.to_bytes()), k);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlowKey {
    /// Source IPv4 address, big-endian byte order.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address, big-endian byte order.
    pub dst_ip: [u8; 4],
    /// Source transport port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination transport port (0 for port-less protocols).
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FlowKey {
    /// Creates a flow key from its five components.
    #[must_use]
    pub fn new(
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        src_port: u16,
        dst_port: u16,
        protocol: Protocol,
    ) -> Self {
        FlowKey { src_ip, dst_ip, src_port, dst_port, protocol }
    }

    /// Serializes the key into its canonical 13-byte (104-bit) wire layout:
    /// `src_ip ‖ dst_ip ‖ src_port ‖ dst_port ‖ protocol`.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip);
        b[4..8].copy_from_slice(&self.dst_ip);
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.protocol.number();
        b
    }

    /// Reconstructs a flow key from its canonical 13-byte layout.
    #[must_use]
    pub fn from_bytes(b: [u8; 13]) -> Self {
        FlowKey {
            src_ip: [b[0], b[1], b[2], b[3]],
            dst_ip: [b[4], b[5], b[6], b[7]],
            src_port: u16::from_be_bytes([b[8], b[9]]),
            dst_port: u16::from_be_bytes([b[10], b[11]]),
            protocol: Protocol::from_number(b[12]),
        }
    }

    /// Source IPv4 address as a host-order integer (used by the multi-core
    /// dispatcher, which hashes on the popcount of the source address).
    #[must_use]
    pub fn src_ip_u32(&self) -> u32 {
        u32::from_be_bytes(self.src_ip)
    }

    /// Destination IPv4 address as a host-order integer.
    #[must_use]
    pub fn dst_ip_u32(&self) -> u32 {
        u32::from_be_bytes(self.dst_ip)
    }

    /// The flow key with source and destination swapped (the reverse
    /// direction of the same conversation).
    #[must_use]
    pub fn reversed(&self) -> Self {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{} ({})",
            self.src_ip[0],
            self.src_ip[1],
            self.src_ip[2],
            self.src_ip[3],
            self.src_port,
            self.dst_ip[0],
            self.dst_ip[1],
            self.dst_ip[2],
            self.dst_ip[3],
            self.dst_port,
            self.protocol
        )
    }
}

/// The minimal per-packet record the measurement pipeline consumes.
///
/// `wire_len` is the on-the-wire frame length in bytes (what the byte
/// counter accumulates); `ts_nanos` is the capture timestamp in nanoseconds
/// since an arbitrary epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PacketRecord {
    /// The flow this packet belongs to.
    pub key: FlowKey,
    /// On-the-wire frame length in bytes.
    pub wire_len: u16,
    /// Capture timestamp, nanoseconds since trace start.
    pub ts_nanos: u64,
}

impl PacketRecord {
    /// Creates a packet record.
    #[must_use]
    pub fn new(key: FlowKey, wire_len: u16, ts_nanos: u64) -> Self {
        PacketRecord { key, wire_len, ts_nanos }
    }

    /// Size of the canonical wire encoding in bytes (13-byte key +
    /// 2-byte length + 8-byte timestamp) — what the live-service ingest
    /// protocol ships per packet.
    pub const WIRE_BYTES: usize = 23;

    /// Serializes the record into its canonical 23-byte wire layout:
    /// `key ‖ wire_len (BE) ‖ ts_nanos (BE)`.
    #[must_use]
    pub fn to_wire_bytes(&self) -> [u8; Self::WIRE_BYTES] {
        let mut b = [0u8; Self::WIRE_BYTES];
        b[0..13].copy_from_slice(&self.key.to_bytes());
        b[13..15].copy_from_slice(&self.wire_len.to_be_bytes());
        b[15..23].copy_from_slice(&self.ts_nanos.to_be_bytes());
        b
    }

    /// Reconstructs a record from its canonical 23-byte wire layout.
    /// Total — every 23-byte string is a valid record, so frame decoding
    /// needs no per-record error path.
    #[must_use]
    pub fn from_wire_bytes(b: [u8; Self::WIRE_BYTES]) -> Self {
        let mut key = [0u8; 13];
        key.copy_from_slice(&b[0..13]);
        PacketRecord {
            key: FlowKey::from_bytes(key),
            wire_len: u16::from_be_bytes([b[13], b[14]]),
            ts_nanos: u64::from_be_bytes(b[15..23].try_into().expect("8-byte slice")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn protocol_display() {
        assert_eq!(Protocol::Tcp.to_string(), "tcp");
        assert_eq!(Protocol::Udp.to_string(), "udp");
        assert_eq!(Protocol::Icmp.to_string(), "icmp");
        assert_eq!(Protocol::Other(89).to_string(), "proto89");
    }

    #[test]
    fn key_bytes_roundtrip() {
        let k = FlowKey::new([10, 20, 30, 40], [50, 60, 70, 80], 12345, 443, Protocol::Udp);
        assert_eq!(FlowKey::from_bytes(k.to_bytes()), k);
    }

    #[test]
    fn key_reversed_is_involution() {
        let k = FlowKey::new([1, 1, 1, 1], [2, 2, 2, 2], 10, 20, Protocol::Tcp);
        assert_eq!(k.reversed().reversed(), k);
        assert_ne!(k.reversed(), k);
    }

    #[test]
    fn key_ip_accessors() {
        let k = FlowKey::new([192, 168, 1, 2], [10, 0, 0, 1], 1, 2, Protocol::Tcp);
        assert_eq!(k.src_ip_u32(), 0xC0A8_0102);
        assert_eq!(k.dst_ip_u32(), 0x0A00_0001);
    }

    #[test]
    fn key_display_is_readable() {
        let k = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 99, 100, Protocol::Tcp);
        assert_eq!(k.to_string(), "1.2.3.4:99 -> 5.6.7.8:100 (tcp)");
    }

    #[test]
    fn record_wire_roundtrip() {
        let k = FlowKey::new([10, 20, 30, 40], [50, 60, 70, 80], 12345, 443, Protocol::Udp);
        let p = PacketRecord::new(k, 1500, u64::MAX - 7);
        assert_eq!(PacketRecord::from_wire_bytes(p.to_wire_bytes()), p);
        // Arbitrary bytes decode to *some* record (total decoding).
        let garbage = [0xA5u8; PacketRecord::WIRE_BYTES];
        let rec = PacketRecord::from_wire_bytes(garbage);
        assert_eq!(rec.to_wire_bytes(), garbage);
    }

    #[test]
    fn record_construction() {
        let k = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 9, 10, Protocol::Icmp);
        let p = PacketRecord::new(k, 64, 42);
        assert_eq!(p.wire_len, 64);
        assert_eq!(p.ts_nanos, 42);
    }
}
