//! Seedable 64-bit flow hashing.
//!
//! The sketches need a hash with good avalanche behaviour (every output bit
//! flips with probability ~1/2 on any input bit flip) because a single
//! 64-bit digest is split into a word index, virtual-vector bit positions
//! and a per-packet position draw. We implement a compact xxh3-style mixer
//! over the 13-byte flow key — no external dependencies, deterministic
//! across platforms, seedable so every structure (L1, WSAF, dispatcher) can
//! use an independent hash function.

use crate::FlowKey;

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;

/// Finalizing mixer with full avalanche (splitmix64 finalizer).
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Hashes a flow key into 64 bits under the given seed.
///
/// Different seeds yield (for practical purposes) independent hash
/// functions; the measurement structures each derive their own seed.
///
/// # Example
///
/// ```
/// use instameasure_packet::{hash, FlowKey, Protocol};
/// let k = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 80, 443, Protocol::Tcp);
/// let a = hash::flow_hash64(&k, 7);
/// let b = hash::flow_hash64(&k, 7);
/// let c = hash::flow_hash64(&k, 8);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[inline]
#[must_use]
pub fn flow_hash64(key: &FlowKey, seed: u64) -> u64 {
    let b = key.to_bytes();
    // Lay the 13 bytes out as two overlapping 64-bit lanes (bytes 0..8 and
    // 5..13) so every byte influences at least one lane.
    let lo = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
    let hi = u64::from_le_bytes([b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12]]);
    let mut acc = seed.wrapping_mul(PRIME_1) ^ PRIME_3;
    acc = mix64(acc ^ lo.wrapping_mul(PRIME_2));
    acc = mix64(acc.rotate_left(31) ^ hi.wrapping_mul(PRIME_1));
    mix64(acc ^ (13u64).wrapping_mul(PRIME_3))
}

/// Derives a per-structure hash lane from a precomputed 64-bit digest.
///
/// The hot path hashes each packet's key bytes exactly once (see
/// [`crate::FlowDigest`]); every measurement structure then derives its own
/// hash from that digest with a single finalizing mix instead of rehashing
/// the 13 key bytes. The seed is spread by an odd-constant multiply (a
/// bijection over `u64`), so distinct structure seeds select distinct,
/// avalanche-independent lanes.
#[inline]
#[must_use]
pub fn lane_hash(digest: u64, seed: u64) -> u64 {
    mix64(digest ^ seed.wrapping_mul(PRIME_2) ^ PRIME_1)
}

/// Hashes an arbitrary byte slice under the given seed (used for pcap
/// self-tests and auxiliary structures).
#[must_use]
pub fn bytes_hash64(data: &[u8], seed: u64) -> u64 {
    let mut acc = seed.wrapping_mul(PRIME_1) ^ PRIME_3 ^ (data.len() as u64);
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lane = u64::from_le_bytes(ch.try_into().expect("chunk is 8 bytes"));
        acc = mix64(acc.rotate_left(31) ^ lane.wrapping_mul(PRIME_2));
    }
    let mut tail = [0u8; 8];
    let rem = chunks.remainder();
    tail[..rem.len()].copy_from_slice(rem);
    let lane = u64::from_le_bytes(tail);
    mix64(acc ^ lane.wrapping_mul(PRIME_1))
}

/// A cheap deterministic counter-mode pseudo-random stream derived from
/// `mix64`, used where the sketches need reproducible per-packet draws.
///
/// Not cryptographic; statistically strong enough for position selection.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Returns a value uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded draw (Lemire); bias < 2^-64 * bound.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(
            i.to_be_bytes(),
            (i.wrapping_mul(2654435761)).to_be_bytes(),
            (i % 65536) as u16,
            443,
            Protocol::Tcp,
        )
    }

    #[test]
    fn deterministic() {
        let k = key(42);
        assert_eq!(flow_hash64(&k, 1), flow_hash64(&k, 1));
    }

    #[test]
    fn seed_independence() {
        let k = key(42);
        assert_ne!(flow_hash64(&k, 1), flow_hash64(&k, 2));
    }

    #[test]
    fn no_collisions_on_small_universe() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..100_000u32 {
            seen.insert(flow_hash64(&key(i), 0));
        }
        // 100k keys into 64 bits: expected collisions ~ 2.7e-10.
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn avalanche_quality() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = key(12345);
        let h0 = flow_hash64(&base, 9);
        let mut total_bits = 0u32;
        let mut samples = 0u32;
        for byte in 0..13 {
            for bit in 0..8 {
                let mut b = base.to_bytes();
                b[byte] ^= 1 << bit;
                let flipped = FlowKey::from_bytes(b);
                total_bits += (h0 ^ flow_hash64(&flipped, 9)).count_ones();
                samples += 1;
            }
        }
        let avg = f64::from(total_bits) / f64::from(samples);
        assert!((24.0..40.0).contains(&avg), "avalanche average {avg} out of range");
    }

    #[test]
    fn low_bits_uniform() {
        // The sketches use the low bits for word indexing; check rough
        // uniformity over 256 buckets.
        let mut counts = [0u32; 256];
        for i in 0..256_000u32 {
            counts[(flow_hash64(&key(i), 3) & 0xFF) as usize] += 1;
        }
        let (min, max) = counts.iter().fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(min > 800 && max < 1200, "bucket spread {min}..{max}");
    }

    #[test]
    fn bytes_hash_distinguishes_lengths() {
        assert_ne!(bytes_hash64(b"", 0), bytes_hash64(b"\0", 0));
        assert_ne!(bytes_hash64(b"abc", 0), bytes_hash64(b"abd", 0));
        assert_eq!(bytes_hash64(b"abcdefgh12345", 7), bytes_hash64(b"abcdefgh12345", 7));
    }

    #[test]
    fn splitmix_bounded_draws() {
        let mut rng = SplitMix64::new(99);
        let mut histogram = [0u32; 8];
        for _ in 0..80_000 {
            histogram[rng.next_below(8) as usize] += 1;
        }
        for &c in &histogram {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn splitmix_zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }
}

#[cfg(test)]
mod golden_tests {
    use super::*;
    use crate::{FlowKey, Protocol};

    /// Golden values pin the hash across refactors: flow records exported
    /// by one build must stay readable (and sketch placements comparable)
    /// by the next. If this test fails, the change broke on-disk/between-
    /// version compatibility — bump the export format version.
    #[test]
    fn flow_hash_golden_values() {
        let k = FlowKey::new([192, 168, 1, 1], [10, 0, 0, 1], 443, 51234, Protocol::Tcp);
        assert_eq!(flow_hash64(&k, 0), 0xCFFC_3D41_2781_0851);
        assert_eq!(flow_hash64(&k, 1), 0x3702_FE54_4A89_D99C);
        assert_eq!(flow_hash64(&k, 0x57AF), 0x09B8_771F_4975_3155);
        assert_eq!(bytes_hash64(b"instameasure", 7), 0x1A9F_6E47_5E80_B7D4);
    }

    #[test]
    fn mixer_golden_values() {
        assert_eq!(mix64(0), 0);
        assert_eq!(mix64(1), 0x5692_161D_100B_05E5);
        assert_eq!(mix64(0x9E37_79B9_7F4A_7C15), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn splitmix_stream_golden_values() {
        let mut s = SplitMix64::new(42);
        assert_eq!(s.next_u64(), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(s.next_u64(), 0x28EF_E333_B266_F103);
        assert_eq!(s.next_u64(), 0x4752_6757_130F_9F52);
    }
}
