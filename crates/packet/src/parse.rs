//! Zero-copy parsers for Ethernet II / 802.1Q / IPv4 / TCP / UDP / ICMP.
//!
//! The parsers extract exactly what the measurement pipeline needs: the
//! 5-tuple [`FlowKey`] plus the IP total length. They tolerate trailing
//! bytes (Ethernet padding, snapped captures that still contain the full
//! L3/L4 headers) and reject malformed headers with precise errors.

use crate::{FlowKey, ParseError, Protocol};

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for an 802.1Q VLAN tag.
pub const ETHERTYPE_VLAN: u16 = 0x8100;
pub use crate::ipv6::ETHERTYPE_IPV6;
/// Length of an untagged Ethernet II header.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// The result of parsing a captured frame down to L4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedPacket {
    /// The 5-tuple of the packet.
    pub key: FlowKey,
    /// Total length declared by the IPv4 header (L3 bytes).
    pub ip_total_len: u16,
    /// Number of 802.1Q VLAN tags skipped (0 or more).
    pub vlan_tags: u8,
}

fn need(layer: &'static str, buf: &[u8], n: usize) -> Result<(), ParseError> {
    if buf.len() < n {
        Err(ParseError::Truncated { layer, needed: n, available: buf.len() })
    } else {
        Ok(())
    }
}

/// Borrows the `N` bytes at `buf[offset..offset + N]` as a fixed-size array,
/// or reports how many bytes past `offset` were actually available. Checked
/// `get` all the way down: no offset, however hostile the input, can panic.
pub(crate) fn take<'a, const N: usize>(
    layer: &'static str,
    buf: &'a [u8],
    offset: usize,
) -> Result<&'a [u8; N], ParseError> {
    buf.get(offset..).and_then(|rest| rest.first_chunk::<N>()).ok_or(ParseError::Truncated {
        layer,
        needed: N,
        available: buf.len().saturating_sub(offset),
    })
}

/// Parses an Ethernet II frame (skipping any 802.1Q tags) down to the L4
/// 5-tuple.
///
/// # Errors
///
/// Returns [`ParseError`] if the frame is truncated, uses a non-IPv4
/// EtherType, or carries a malformed IPv4 header.
///
/// # Example
///
/// ```
/// use instameasure_packet::{parse, synth, FlowKey, PacketRecord, Protocol};
/// let key = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 1000, 80, Protocol::Udp);
/// let frame = synth::synthesize_frame(&PacketRecord::new(key, 200, 0));
/// let parsed = parse::parse_ethernet(&frame)?;
/// assert_eq!(parsed.key, key);
/// # Ok::<(), instameasure_packet::ParseError>(())
/// ```
pub fn parse_ethernet(frame: &[u8]) -> Result<ParsedPacket, ParseError> {
    need("ethernet", frame, ETHERNET_HEADER_LEN)?;
    let mut offset = 12;
    let mut vlan_tags = 0u8;
    let mut ethertype = u16::from_be_bytes(*take::<2>("ethernet", frame, offset)?);
    offset += 2;
    while ethertype == ETHERTYPE_VLAN {
        let tag = take::<4>("vlan", frame, offset)?;
        ethertype = u16::from_be_bytes([tag[2], tag[3]]);
        offset += 4;
        // Saturate: a frame stuffed with >255 tags is hostile input, not an
        // excuse to overflow.
        vlan_tags = vlan_tags.saturating_add(1);
    }
    let rest = frame.get(offset..).unwrap_or(&[]);
    match ethertype {
        ETHERTYPE_IPV4 => {
            let parsed = parse_ipv4(rest)?;
            Ok(ParsedPacket { vlan_tags, ..parsed })
        }
        ETHERTYPE_IPV6 => {
            // Dual-stack: parse v6 and map into the measurement keyspace
            // (see the ipv6 module docs).
            let v6 = crate::ipv6::parse_ipv6(rest)?;
            Ok(ParsedPacket {
                key: v6.key,
                ip_total_len: (crate::ipv6::IPV6_HEADER_LEN as u16).saturating_add(v6.payload_len),
                vlan_tags,
            })
        }
        other => Err(ParseError::UnsupportedEtherType(other)),
    }
}

/// Parses an IPv4 packet (starting at the IP header) down to the 5-tuple.
///
/// Handles IPv4 options (IHL > 5). For TCP and UDP the ports are read from
/// the transport header; for every other protocol the ports are zero.
///
/// # Errors
///
/// Returns [`ParseError`] on truncation, a version nibble ≠ 4, or an IHL
/// below 5.
pub fn parse_ipv4(buf: &[u8]) -> Result<ParsedPacket, ParseError> {
    let hdr = take::<20>("ipv4", buf, 0)?;
    let version = hdr[0] >> 4;
    if version != 4 {
        return Err(ParseError::UnsupportedIpVersion(version));
    }
    let ihl = hdr[0] & 0x0F;
    if ihl < 5 {
        return Err(ParseError::BadIpv4HeaderLength(ihl));
    }
    let header_len = usize::from(ihl) * 4;
    need("ipv4-options", buf, header_len)?;
    let ip_total_len = u16::from_be_bytes([hdr[2], hdr[3]]);
    let protocol = Protocol::from_number(hdr[9]);
    let src_ip = [hdr[12], hdr[13], hdr[14], hdr[15]];
    let dst_ip = [hdr[16], hdr[17], hdr[18], hdr[19]];

    let (src_port, dst_port) = match protocol {
        Protocol::Tcp | Protocol::Udp => {
            let l4 = take::<4>("l4-ports", buf, header_len)?;
            (u16::from_be_bytes([l4[0], l4[1]]), u16::from_be_bytes([l4[2], l4[3]]))
        }
        _ => (0, 0),
    };

    Ok(ParsedPacket {
        key: FlowKey::new(src_ip, dst_ip, src_port, dst_port, protocol),
        ip_total_len,
        vlan_tags: 0,
    })
}

/// Computes the standard Internet checksum (RFC 1071) over `data`.
///
/// Used by the frame synthesizer; exposed publicly so tests and tools can
/// validate synthesized headers.
#[must_use]
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for ch in &mut chunks {
        sum += u32::from(u16::from_be_bytes([ch[0], ch[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize_frame;
    use crate::PacketRecord;

    fn sample_key() -> FlowKey {
        FlowKey::new([10, 1, 2, 3], [172, 16, 0, 9], 5555, 53, Protocol::Udp)
    }

    #[test]
    fn parses_synthesized_udp() {
        let frame = synthesize_frame(&PacketRecord::new(sample_key(), 120, 0));
        let p = parse_ethernet(&frame).unwrap();
        assert_eq!(p.key, sample_key());
        assert_eq!(p.vlan_tags, 0);
    }

    #[test]
    fn parses_synthesized_tcp_and_icmp() {
        for proto in [Protocol::Tcp, Protocol::Icmp, Protocol::Other(47)] {
            let mut key = sample_key();
            key.protocol = proto;
            if !matches!(proto, Protocol::Tcp | Protocol::Udp) {
                key.src_port = 0;
                key.dst_port = 0;
            }
            let frame = synthesize_frame(&PacketRecord::new(key, 80, 0));
            let p = parse_ethernet(&frame).unwrap();
            assert_eq!(p.key, key, "{proto}");
        }
    }

    #[test]
    fn rejects_truncated_ethernet() {
        let err = parse_ethernet(&[0u8; 10]).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { layer: "ethernet", .. }));
    }

    #[test]
    fn rejects_non_ip_ethertype() {
        let mut frame = vec![0u8; 60];
        frame[12] = 0x08;
        frame[13] = 0x06; // ARP
        assert_eq!(parse_ethernet(&frame).unwrap_err(), ParseError::UnsupportedEtherType(0x0806));
    }

    #[test]
    fn parses_ipv6_frames_into_mapped_keys() {
        // Ethernet header + minimal IPv6/UDP packet.
        let mut frame = vec![0u8; ETHERNET_HEADER_LEN];
        frame[12] = 0x86;
        frame[13] = 0xDD;
        let mut v6 = vec![0u8; 48];
        v6[0] = 0x60;
        v6[4..6].copy_from_slice(&8u16.to_be_bytes());
        v6[6] = 17;
        v6[23] = 7; // src ::7
        v6[39] = 8; // dst ::8
        v6[40..42].copy_from_slice(&4444u16.to_be_bytes());
        v6[42..44].copy_from_slice(&53u16.to_be_bytes());
        frame.extend_from_slice(&v6);
        let p = parse_ethernet(&frame).unwrap();
        assert_eq!(p.key.protocol, Protocol::Udp);
        assert_eq!(p.key.src_port, 4444);
        assert_eq!(p.key.dst_port, 53);
        assert_eq!(p.ip_total_len, 48);
        // The mapped pseudo-addresses are deterministic and distinct.
        assert_ne!(p.key.src_ip, p.key.dst_ip);
        assert_eq!(parse_ethernet(&frame).unwrap().key, p.key);
    }

    #[test]
    fn rejects_bad_ip_version_and_ihl() {
        let mut buf = vec![0u8; 40];
        buf[0] = 0x60; // version 6
        assert_eq!(parse_ipv4(&buf).unwrap_err(), ParseError::UnsupportedIpVersion(6));
        buf[0] = 0x43; // version 4, IHL 3
        assert_eq!(parse_ipv4(&buf).unwrap_err(), ParseError::BadIpv4HeaderLength(3));
    }

    #[test]
    fn rejects_truncated_l4() {
        let frame = synthesize_frame(&PacketRecord::new(sample_key(), 120, 0));
        // Cut the frame right after the IP header: ports unreachable.
        let cut = &frame[..ETHERNET_HEADER_LEN + 20 + 2];
        let err = parse_ethernet(cut).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { layer: "l4-ports", .. }));
    }

    #[test]
    fn handles_vlan_tag() {
        let inner = synthesize_frame(&PacketRecord::new(sample_key(), 120, 0));
        let mut tagged = Vec::new();
        tagged.extend_from_slice(&inner[..12]);
        tagged.extend_from_slice(&[0x81, 0x00, 0x00, 0x64]); // VLAN 100
        tagged.extend_from_slice(&inner[12..]);
        let p = parse_ethernet(&tagged).unwrap();
        assert_eq!(p.key, sample_key());
        assert_eq!(p.vlan_tags, 1);
    }

    #[test]
    fn handles_ipv4_options() {
        let frame = synthesize_frame(&PacketRecord::new(sample_key(), 120, 0));
        let ip_start = ETHERNET_HEADER_LEN;
        let mut with_opts = frame[ip_start..ip_start + 20].to_vec();
        with_opts[0] = 0x46; // IHL 6
        with_opts.extend_from_slice(&[1, 1, 1, 1]); // 4 bytes of NOP options
        with_opts.extend_from_slice(&frame[ip_start + 20..]);
        let p = parse_ipv4(&with_opts).unwrap();
        assert_eq!(p.key, sample_key());
    }

    #[test]
    fn vlan_tag_flood_saturates_instead_of_overflowing() {
        // 300 stacked 802.1Q tags: the tag counter must saturate at 255, not
        // overflow, and the inner IPv4 packet must still parse.
        let inner = synthesize_frame(&PacketRecord::new(sample_key(), 120, 0));
        let mut tagged = Vec::new();
        tagged.extend_from_slice(&inner[..12]);
        for _ in 0..300 {
            tagged.extend_from_slice(&[0x81, 0x00, 0x00, 0x64]);
        }
        tagged.extend_from_slice(&inner[12..]);
        let p = parse_ethernet(&tagged).unwrap();
        assert_eq!(p.key, sample_key());
        assert_eq!(p.vlan_tags, u8::MAX);
    }

    #[test]
    fn vlan_tag_cut_mid_tag_is_a_vlan_truncation() {
        let inner = synthesize_frame(&PacketRecord::new(sample_key(), 120, 0));
        let mut tagged = Vec::new();
        tagged.extend_from_slice(&inner[..12]);
        // 0x8100 is consumed as the ethertype; the 4-byte TCI+ethertype tag
        // body that must follow is cut after 1 byte.
        tagged.extend_from_slice(&[0x81, 0x00, 0x00]);
        let err = parse_ethernet(&tagged).unwrap_err();
        assert_eq!(err, ParseError::Truncated { layer: "vlan", needed: 4, available: 1 });
    }

    #[test]
    fn take_never_panics_on_hostile_offsets() {
        let buf = [0u8; 4];
        assert!(take::<4>("x", &buf, 0).is_ok());
        assert!(matches!(
            take::<4>("x", &buf, 1),
            Err(ParseError::Truncated { needed: 4, available: 3, .. })
        ));
        assert!(matches!(
            take::<1>("x", &buf, usize::MAX),
            Err(ParseError::Truncated { available: 0, .. })
        ));
    }

    #[test]
    fn checksum_matches_rfc1071_example() {
        // Example from RFC 1071 §3: words 0001 f203 f4f5 f6f7 -> checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn synthesized_ip_checksum_validates() {
        let frame = synthesize_frame(&PacketRecord::new(sample_key(), 200, 0));
        let ip = &frame[ETHERNET_HEADER_LEN..ETHERNET_HEADER_LEN + 20];
        assert_eq!(internet_checksum(ip), 0, "checksum over header incl. checksum field is 0");
    }
}
