//! IPv6 parsing and mapping into the measurement keyspace.
//!
//! The paper's WSAF entry (and our [`FlowKey`]) is the classic 104-bit
//! IPv4 5-tuple. Real links are dual-stack, so a deployable probe must do
//! *something* with IPv6 traffic. We do what fixed-width-key devices do:
//! parse the v6 header chain, then **map** each 128-bit address to a
//! 32-bit pseudo-address by hashing (seeded, deterministic). Collisions
//! are possible but negligible at measurement scales (birthday bound
//! ~2⁻³² per pair), and per-flow semantics are preserved exactly: equal
//! v6 tuples always map to the same [`FlowKey`].
//!
//! The mapped key's protocol is the real transport protocol, so TCP/UDP
//! v6 flows mix naturally with v4 flows in the same WSAF.

use crate::hash::bytes_hash64;
use crate::parse::take;
use crate::{FlowKey, ParseError, Protocol};

/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86DD;

/// Fixed length of the IPv6 base header.
pub const IPV6_HEADER_LEN: usize = 40;

/// Seed domain for the v6→v4 address mapping (distinct from every sketch
/// seed so pseudo-addresses do not correlate with sketch placement).
const V6_MAP_SEED: u64 = 0x6666_0000_1111_2222;

/// A parsed IPv6 packet mapped into the measurement keyspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedV6 {
    /// The mapped 5-tuple (pseudo-IPv4 addresses — see module docs).
    pub key: FlowKey,
    /// The IPv6 payload length field (L3 payload bytes).
    pub payload_len: u16,
    /// Number of extension headers skipped.
    pub ext_headers: u8,
}

/// Maps a 128-bit IPv6 address to its deterministic 32-bit pseudo-address.
#[must_use]
pub fn map_v6_addr(addr: &[u8; 16]) -> [u8; 4] {
    ((bytes_hash64(addr, V6_MAP_SEED) >> 32) as u32).to_be_bytes()
}

fn need(layer: &'static str, buf: &[u8], n: usize) -> Result<(), ParseError> {
    if buf.len() < n {
        Err(ParseError::Truncated { layer, needed: n, available: buf.len() })
    } else {
        Ok(())
    }
}

/// Parses an IPv6 packet (starting at the IPv6 header) down to the mapped
/// 5-tuple, skipping hop-by-hop, routing, destination-options and
/// fragment extension headers.
///
/// # Errors
///
/// Returns [`ParseError`] on truncation or a version nibble ≠ 6.
pub fn parse_ipv6(buf: &[u8]) -> Result<ParsedV6, ParseError> {
    let hdr = take::<{ IPV6_HEADER_LEN }>("ipv6", buf, 0)?;
    let version = hdr[0] >> 4;
    if version != 6 {
        return Err(ParseError::UnsupportedIpVersion(version));
    }
    let payload_len = u16::from_be_bytes([hdr[4], hdr[5]]);
    let mut next_header = hdr[6];
    let src: &[u8; 16] = take("ipv6", buf, 8)?;
    let dst: &[u8; 16] = take("ipv6", buf, 24)?;

    // Walk the extension-header chain.
    let mut offset = IPV6_HEADER_LEN;
    let mut ext_headers = 0u8;
    loop {
        match next_header {
            // Hop-by-hop (0), routing (43), destination options (60):
            // length-prefixed in 8-byte units.
            0 | 43 | 60 => {
                let ext = take::<2>("ipv6-ext", buf, offset)?;
                let len = 8 + usize::from(ext[1]) * 8;
                next_header = ext[0];
                offset += len;
                ext_headers += 1;
                need("ipv6-ext", buf, offset)?;
            }
            // Fragment header (44): fixed 8 bytes.
            44 => {
                let frag = take::<8>("ipv6-frag", buf, offset)?;
                next_header = frag[0];
                offset += 8;
                ext_headers += 1;
            }
            _ => break,
        }
        if ext_headers > 8 {
            // A chain this deep is hostile input; stop walking.
            break;
        }
    }

    let protocol = match next_header {
        6 => Protocol::Tcp,
        17 => Protocol::Udp,
        58 => Protocol::Icmp, // ICMPv6 counts as ICMP for measurement
        other => Protocol::Other(other),
    };
    let (src_port, dst_port) = match protocol {
        Protocol::Tcp | Protocol::Udp => {
            let l4 = take::<4>("l4-ports", buf, offset)?;
            (u16::from_be_bytes([l4[0], l4[1]]), u16::from_be_bytes([l4[2], l4[3]]))
        }
        _ => (0, 0),
    };

    Ok(ParsedV6 {
        key: FlowKey::new(map_v6_addr(src), map_v6_addr(dst), src_port, dst_port, protocol),
        payload_len,
        ext_headers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a minimal IPv6+UDP packet.
    fn v6_udp(src_last: u8, dst_last: u8, sport: u16, dport: u16) -> Vec<u8> {
        let mut p = vec![0u8; IPV6_HEADER_LEN + 8];
        p[0] = 0x60;
        p[4..6].copy_from_slice(&8u16.to_be_bytes()); // payload = UDP header
        p[6] = 17; // UDP
        p[7] = 64; // hop limit
        p[8] = 0x20; // 2001::/16-ish src
        p[23] = src_last;
        p[24] = 0x20;
        p[39] = dst_last;
        p[40..42].copy_from_slice(&sport.to_be_bytes());
        p[42..44].copy_from_slice(&dport.to_be_bytes());
        p
    }

    #[test]
    fn parses_udp_v6_and_maps_deterministically() {
        let p = v6_udp(1, 2, 5000, 53);
        let a = parse_ipv6(&p).unwrap();
        let b = parse_ipv6(&p).unwrap();
        assert_eq!(a, b, "deterministic mapping");
        assert_eq!(a.key.protocol, Protocol::Udp);
        assert_eq!(a.key.src_port, 5000);
        assert_eq!(a.key.dst_port, 53);
        assert_eq!(a.payload_len, 8);
        assert_eq!(a.ext_headers, 0);
    }

    #[test]
    fn distinct_addresses_map_to_distinct_keys() {
        let a = parse_ipv6(&v6_udp(1, 2, 1, 1)).unwrap().key;
        let b = parse_ipv6(&v6_udp(3, 2, 1, 1)).unwrap().key;
        assert_ne!(a.src_ip, b.src_ip);
        assert_eq!(a.dst_ip, b.dst_ip, "same dst maps identically");
    }

    #[test]
    fn skips_extension_headers() {
        // Insert a hop-by-hop header (8 bytes) before UDP.
        let inner = v6_udp(9, 9, 100, 200);
        let mut p = inner[..IPV6_HEADER_LEN].to_vec();
        p[6] = 0; // next = hop-by-hop
        p.push(17); // ext: next = UDP
        p.push(0); // ext len = 0 => 8 bytes
        p.extend_from_slice(&[0; 6]);
        p.extend_from_slice(&inner[IPV6_HEADER_LEN..]);
        let parsed = parse_ipv6(&p).unwrap();
        assert_eq!(parsed.ext_headers, 1);
        assert_eq!(parsed.key.protocol, Protocol::Udp);
        assert_eq!(parsed.key.src_port, 100);
    }

    #[test]
    fn icmpv6_has_zero_ports() {
        let mut p = v6_udp(1, 1, 0, 0);
        p[6] = 58; // ICMPv6
        let parsed = parse_ipv6(&p).unwrap();
        assert_eq!(parsed.key.protocol, Protocol::Icmp);
        assert_eq!(parsed.key.src_port, 0);
    }

    #[test]
    fn rejects_truncation_and_bad_version() {
        assert!(matches!(
            parse_ipv6(&[0x60; 10]),
            Err(ParseError::Truncated { layer: "ipv6", .. })
        ));
        let mut p = v6_udp(1, 1, 1, 1);
        p[0] = 0x40;
        assert_eq!(parse_ipv6(&p).unwrap_err(), ParseError::UnsupportedIpVersion(4));
        // Truncated right after the base header with TCP next: ports missing.
        let mut p = v6_udp(1, 1, 1, 1);
        p[6] = 6;
        p.truncate(IPV6_HEADER_LEN + 2);
        assert!(matches!(parse_ipv6(&p), Err(ParseError::Truncated { layer: "l4-ports", .. })));
    }

    #[test]
    fn oversized_extension_length_is_a_truncation_error() {
        // A hop-by-hop header claiming the maximum length (255 => 2048
        // bytes) in a short packet must report truncation, not index past
        // the buffer.
        let mut p = v6_udp(1, 1, 1, 1);
        p[6] = 0; // next = hop-by-hop
        p.extend_from_slice(&[17, 255, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(parse_ipv6(&p), Err(ParseError::Truncated { layer: "ipv6-ext", .. })));
    }

    #[test]
    fn fragment_header_cut_short_is_a_frag_truncation() {
        let mut p = v6_udp(1, 1, 1, 1);
        p[6] = 44; // next = fragment
        p.truncate(IPV6_HEADER_LEN);
        p.extend_from_slice(&[17, 0, 0]); // only 3 of 8 fragment bytes
        assert!(matches!(
            parse_ipv6(&p),
            Err(ParseError::Truncated { layer: "ipv6-frag", needed: 8, .. })
        ));
    }

    #[test]
    fn hostile_extension_chains_terminate() {
        // A self-referential hop-by-hop chain must not loop forever.
        let mut p = v6_udp(1, 1, 1, 1);
        p[6] = 0;
        for _ in 0..12 {
            p.extend_from_slice(&[0u8, 0, 0, 0, 0, 0, 0, 0]); // next=hbh, len=0
        }
        let _ = parse_ipv6(&p); // must return (Ok or Err), not hang
    }
}
