//! A from-scratch implementation of the classic libpcap file format.
//!
//! Supports reading both endiannesses and both timestamp resolutions
//! (microsecond magic `0xA1B2C3D4`, nanosecond magic `0xA1B23C4D`), and
//! writing little-endian files in either resolution. Only what the
//! trace-driven evaluation needs — no pcapng.
//!
//! # Example
//!
//! ```
//! use instameasure_packet::pcap::{PcapReader, PcapWriter, TsResolution};
//! use instameasure_packet::{synth, FlowKey, PacketRecord, Protocol};
//!
//! let key = FlowKey::new([1, 2, 3, 4], [4, 3, 2, 1], 123, 80, Protocol::Tcp);
//! let rec = PacketRecord::new(key, 300, 1_500);
//!
//! let mut file = Vec::new();
//! let mut w = PcapWriter::new(&mut file, TsResolution::Nano)?;
//! w.write_packet(rec.ts_nanos, &synth::synthesize_frame(&rec))?;
//! drop(w);
//!
//! let mut r = PcapReader::new(&file[..])?;
//! let pkt = r.next_packet()?.unwrap();
//! assert_eq!(pkt.ts_nanos, 1_500);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, BytesMut};

use crate::ParseError;

/// Microsecond-resolution pcap magic.
pub const MAGIC_MICRO: u32 = 0xA1B2_C3D4;
/// Nanosecond-resolution pcap magic.
pub const MAGIC_NANO: u32 = 0xA1B2_3C4D;
/// Link type for Ethernet.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Sanity limit on a single record's captured length (64 KiB frames plus
/// generous headroom); guards against corrupt length fields.
pub const MAX_CAPLEN: u32 = 256 * 1024;

/// Timestamp resolution of a pcap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsResolution {
    /// Microsecond timestamps (classic `0xA1B2C3D4` magic).
    Micro,
    /// Nanosecond timestamps (`0xA1B23C4D` magic).
    Nano,
}

/// Errors produced by pcap I/O: either a malformed file or an underlying
/// I/O failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum PcapError {
    /// The file violates the pcap format.
    Format(ParseError),
    /// The underlying reader/writer failed.
    Io(io::Error),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Format(e) => write!(f, "pcap format error: {e}"),
            PcapError::Io(e) => write!(f, "pcap io error: {e}"),
        }
    }
}

impl std::error::Error for PcapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcapError::Format(e) => Some(e),
            PcapError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl From<ParseError> for PcapError {
    fn from(e: ParseError) -> Self {
        PcapError::Format(e)
    }
}

/// One captured packet as stored in a pcap file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Timestamp in nanoseconds since the Unix epoch (converted from the
    /// file's native resolution).
    pub ts_nanos: u64,
    /// Original on-the-wire length.
    pub orig_len: u32,
    /// Captured bytes (may be shorter than `orig_len` if the capture was
    /// snapped).
    pub data: Vec<u8>,
}

/// The decoded 24-byte pcap global header, shared by the owned-buffer
/// [`PcapReader`] and the zero-copy [`crate::chunk::PcapChunkReader`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct GlobalHeader {
    /// Whether the file's byte order is swapped relative to the host.
    pub swapped: bool,
    /// Timestamp resolution encoded by the magic.
    pub resolution: TsResolution,
    /// Link type (1 = Ethernet).
    pub link_type: u32,
    /// Declared snapshot length (0 in some writers; advisory upper bound).
    pub snaplen: u32,
}

/// Decodes and validates a pcap global header.
pub(crate) fn parse_global_header(hdr: &[u8; 24]) -> Result<GlobalHeader, ParseError> {
    let magic_le = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    let magic_be = u32::from_be_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    let (swapped, resolution) = match (magic_le, magic_be) {
        (MAGIC_MICRO, _) => (false, TsResolution::Micro),
        (MAGIC_NANO, _) => (false, TsResolution::Nano),
        (_, MAGIC_MICRO) => (true, TsResolution::Micro),
        (_, MAGIC_NANO) => (true, TsResolution::Nano),
        _ => return Err(ParseError::BadPcapMagic(magic_le)),
    };
    let read_u32 = |b: &[u8]| -> u32 {
        let arr = [b[0], b[1], b[2], b[3]];
        if swapped {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    };
    Ok(GlobalHeader {
        swapped,
        resolution,
        link_type: read_u32(&hdr[20..24]),
        snaplen: read_u32(&hdr[16..20]),
    })
}

/// The caplen limit a reader enforces for a file with the given declared
/// snaplen: the snaplen when it is meaningful, capped by [`MAX_CAPLEN`]
/// (snaplen 0 means "unset" in several writers and falls back to the
/// sanity limit).
pub(crate) fn caplen_limit(snaplen: u32) -> u32 {
    if snaplen == 0 {
        MAX_CAPLEN
    } else {
        snaplen.min(MAX_CAPLEN)
    }
}

/// The decoded 16-byte per-record header.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecordHeader {
    /// Timestamp in nanoseconds (converted from the file's resolution).
    pub ts_nanos: u64,
    /// Captured length in bytes.
    pub caplen: u32,
    /// Original on-the-wire length in bytes.
    pub orig_len: u32,
}

/// Decodes a record header and rejects the corrupt shapes: a caplen above
/// the file's limit, and the all-zero-length record of a zeroed file tail.
pub(crate) fn parse_record_header(
    hdr: &[u8; 16],
    swapped: bool,
    resolution: TsResolution,
    limit: u32,
) -> Result<RecordHeader, ParseError> {
    let read_u32 = |b: &[u8]| -> u32 {
        let arr = [b[0], b[1], b[2], b[3]];
        if swapped {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    };
    let ts_sec = read_u32(&hdr[0..4]);
    let ts_frac = read_u32(&hdr[4..8]);
    let caplen = read_u32(&hdr[8..12]);
    let orig_len = read_u32(&hdr[12..16]);
    if caplen > limit {
        return Err(ParseError::OversizedPcapRecord { caplen, limit });
    }
    if caplen == 0 && orig_len == 0 {
        return Err(ParseError::EmptyPcapRecord);
    }
    let frac_nanos = match resolution {
        TsResolution::Micro => u64::from(ts_frac) * 1_000,
        TsResolution::Nano => u64::from(ts_frac),
    };
    Ok(RecordHeader { ts_nanos: u64::from(ts_sec) * 1_000_000_000 + frac_nanos, caplen, orig_len })
}

/// Reads into `buf` until it is full or the source hits EOF; returns the
/// number of bytes actually read. Unlike `read_exact`, a partial fill is
/// reported instead of being folded into an `UnexpectedEof` error, so the
/// caller can distinguish a clean end of file from a truncated header.
pub(crate) fn read_full<R: Read>(inner: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match inner.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// Streaming reader for classic pcap files.
///
/// Works with any [`Read`] source; pass `&mut reader` if you need the reader
/// back afterwards.
#[derive(Debug)]
pub struct PcapReader<R> {
    inner: R,
    swapped: bool,
    resolution: TsResolution,
    link_type: u32,
    snaplen: u32,
}

impl<R: Read> PcapReader<R> {
    /// Opens a pcap stream, consuming and validating the 24-byte global
    /// header.
    ///
    /// # Errors
    ///
    /// Returns [`PcapError::Format`] on an unknown magic and
    /// [`PcapError::Io`] if the header cannot be read.
    pub fn new(mut inner: R) -> Result<Self, PcapError> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let g = parse_global_header(&hdr)?;
        Ok(PcapReader {
            inner,
            swapped: g.swapped,
            resolution: g.resolution,
            link_type: g.link_type,
            snaplen: g.snaplen,
        })
    }

    /// The file's timestamp resolution.
    #[must_use]
    pub fn resolution(&self) -> TsResolution {
        self.resolution
    }

    /// The file's link type (1 = Ethernet).
    #[must_use]
    pub fn link_type(&self) -> u32 {
        self.link_type
    }

    /// The file's declared snapshot length (0 if the writer left it unset).
    #[must_use]
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Reads the next packet record, or `Ok(None)` at a clean end of file.
    ///
    /// # Errors
    ///
    /// Returns [`PcapError::Format`] on a record header truncated by EOF, a
    /// declared capture length above the file's snaplen (or [`MAX_CAPLEN`]),
    /// or a zero-length record; [`PcapError::Io`] on a truncated record body
    /// or any I/O failure.
    pub fn next_packet(&mut self) -> Result<Option<CapturedPacket>, PcapError> {
        let mut hdr = [0u8; 16];
        let got = read_full(&mut self.inner, &mut hdr)?;
        if got == 0 {
            return Ok(None);
        }
        if got < hdr.len() {
            // A file that ends inside a record header is corrupt, not a
            // clean EOF.
            return Err(ParseError::Truncated {
                layer: "pcap-record-header",
                needed: hdr.len(),
                available: got,
            }
            .into());
        }
        let rh =
            parse_record_header(&hdr, self.swapped, self.resolution, caplen_limit(self.snaplen))?;
        let mut data = vec![0u8; rh.caplen as usize];
        self.inner.read_exact(&mut data)?;
        Ok(Some(CapturedPacket { ts_nanos: rh.ts_nanos, orig_len: rh.orig_len, data }))
    }

    /// Returns an iterator over all remaining packets.
    pub fn packets(&mut self) -> Packets<'_, R> {
        Packets { reader: self }
    }
}

/// Iterator over the packets of a [`PcapReader`], produced by
/// [`PcapReader::packets`].
#[derive(Debug)]
pub struct Packets<'a, R> {
    reader: &'a mut PcapReader<R>,
}

impl<R: Read> Iterator for Packets<'_, R> {
    type Item = Result<CapturedPacket, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_packet().transpose()
    }
}

/// Streaming writer for classic little-endian pcap files.
#[derive(Debug)]
pub struct PcapWriter<W> {
    inner: W,
    resolution: TsResolution,
    buf: BytesMut,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the 24-byte global header (Ethernet link
    /// type, snaplen 256 KiB).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the header.
    pub fn new(mut inner: W, resolution: TsResolution) -> Result<Self, PcapError> {
        let magic = match resolution {
            TsResolution::Micro => MAGIC_MICRO,
            TsResolution::Nano => MAGIC_NANO,
        };
        let mut hdr = BytesMut::with_capacity(24);
        hdr.put_u32_le(magic);
        hdr.put_u16_le(2); // version major
        hdr.put_u16_le(4); // version minor
        hdr.put_u32_le(0); // thiszone
        hdr.put_u32_le(0); // sigfigs
        hdr.put_u32_le(MAX_CAPLEN); // snaplen
        hdr.put_u32_le(LINKTYPE_ETHERNET);
        inner.write_all(&hdr)?;
        Ok(PcapWriter { inner, resolution, buf: BytesMut::with_capacity(2048) })
    }

    /// Appends one packet with the given timestamp (nanoseconds) and frame
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_packet(&mut self, ts_nanos: u64, frame: &[u8]) -> Result<(), PcapError> {
        let (sec, frac) = match self.resolution {
            TsResolution::Micro => (ts_nanos / 1_000_000_000, (ts_nanos % 1_000_000_000) / 1_000),
            TsResolution::Nano => (ts_nanos / 1_000_000_000, ts_nanos % 1_000_000_000),
        };
        self.buf.clear();
        self.buf.put_u32_le(sec as u32);
        self.buf.put_u32_le(frac as u32);
        self.buf.put_u32_le(frame.len() as u32);
        self.buf.put_u32_le(frame.len() as u32);
        self.inner.write_all(&self.buf)?;
        self.inner.write_all(frame)?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the final flush.
    pub fn into_inner(mut self) -> Result<W, PcapError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Reads a whole pcap stream and, for each IPv4 packet that parses, yields a
/// [`crate::PacketRecord`] (timestamps rebased so the first packet is t=0).
///
/// Non-IPv4 or malformed frames are counted and skipped, mirroring how a
/// measurement device treats traffic it does not understand.
///
/// # Errors
///
/// Returns an error only for file-level problems (bad magic, truncated
/// record, I/O); per-packet parse failures are tolerated.
pub fn read_records<R: Read>(reader: R) -> Result<(Vec<crate::PacketRecord>, u64), PcapError> {
    let mut r = PcapReader::new(reader)?;
    let mut records = Vec::new();
    let mut skipped = 0u64;
    let mut base_ts: Option<u64> = None;
    while let Some(cap) = r.next_packet()? {
        match crate::parse::parse_ethernet(&cap.data) {
            Ok(parsed) => {
                let base = *base_ts.get_or_insert(cap.ts_nanos);
                records.push(crate::PacketRecord::new(
                    parsed.key,
                    cap.orig_len.min(u32::from(u16::MAX)) as u16,
                    cap.ts_nanos.saturating_sub(base),
                ));
            }
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

// `bytes::Buf` is used by tests to consume headers; keep the import exercised.
#[allow(dead_code)]
fn advance_header(buf: &mut &[u8]) {
    if buf.len() >= 24 {
        buf.advance(24);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize_frame;
    use crate::{FlowKey, PacketRecord, Protocol};

    fn key(i: u8) -> FlowKey {
        FlowKey::new([i, 0, 0, 1], [i, 0, 0, 2], 1000 + u16::from(i), 80, Protocol::Tcp)
    }

    fn roundtrip(resolution: TsResolution) {
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, resolution).unwrap();
        for i in 0..5u8 {
            let rec = PacketRecord::new(key(i), 100 + u16::from(i), u64::from(i) * 1_000_000);
            w.write_packet(rec.ts_nanos, &synthesize_frame(&rec)).unwrap();
        }
        w.into_inner().unwrap();

        let mut r = PcapReader::new(&file[..]).unwrap();
        assert_eq!(r.link_type(), LINKTYPE_ETHERNET);
        assert_eq!(r.resolution(), resolution);
        let pkts: Vec<_> = r.packets().collect::<Result<_, _>>().unwrap();
        assert_eq!(pkts.len(), 5);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.ts_nanos, i as u64 * 1_000_000);
            assert_eq!(p.orig_len as usize, p.data.len());
            let parsed = crate::parse::parse_ethernet(&p.data).unwrap();
            assert_eq!(parsed.key, key(i as u8));
        }
    }

    #[test]
    fn roundtrip_micro() {
        roundtrip(TsResolution::Micro);
    }

    #[test]
    fn roundtrip_nano() {
        roundtrip(TsResolution::Nano);
    }

    #[test]
    fn micro_resolution_truncates_sub_microsecond() {
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, TsResolution::Micro).unwrap();
        let rec = PacketRecord::new(key(1), 100, 1_234_567_890_123);
        w.write_packet(rec.ts_nanos, &synthesize_frame(&rec)).unwrap();
        w.into_inner().unwrap();
        let mut r = PcapReader::new(&file[..]).unwrap();
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.ts_nanos, 1_234_567_890_000);
    }

    #[test]
    fn reads_big_endian_files() {
        // Hand-build a big-endian microsecond file with one tiny record.
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC_MICRO.to_be_bytes());
        file.extend_from_slice(&2u16.to_be_bytes());
        file.extend_from_slice(&4u16.to_be_bytes());
        file.extend_from_slice(&[0; 8]);
        file.extend_from_slice(&65535u32.to_be_bytes());
        file.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        file.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        file.extend_from_slice(&9u32.to_be_bytes()); // ts_usec
        file.extend_from_slice(&4u32.to_be_bytes()); // caplen
        file.extend_from_slice(&60u32.to_be_bytes()); // origlen
        file.extend_from_slice(&[0xAA; 4]);
        let mut r = PcapReader::new(&file[..]).unwrap();
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.ts_nanos, 7_000_009_000);
        assert_eq!(p.orig_len, 60);
        assert_eq!(p.data, vec![0xAA; 4]);
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn rejects_bad_magic() {
        let file = [0u8; 24];
        match PcapReader::new(&file[..]) {
            Err(PcapError::Format(ParseError::BadPcapMagic(0))) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_record() {
        let mut file = Vec::new();
        let w = PcapWriter::new(&mut file, TsResolution::Micro).unwrap();
        w.into_inner().unwrap();
        file.extend_from_slice(&[0; 8]); // ts
        file.extend_from_slice(&(MAX_CAPLEN + 1).to_le_bytes());
        file.extend_from_slice(&100u32.to_le_bytes());
        let mut r = PcapReader::new(&file[..]).unwrap();
        assert!(matches!(
            r.next_packet(),
            Err(PcapError::Format(ParseError::OversizedPcapRecord { .. }))
        ));
    }

    #[test]
    fn truncated_record_body_is_io_error() {
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, TsResolution::Micro).unwrap();
        let rec = PacketRecord::new(key(1), 100, 0);
        w.write_packet(0, &synthesize_frame(&rec)).unwrap();
        w.into_inner().unwrap();
        file.truncate(file.len() - 10);
        let mut r = PcapReader::new(&file[..]).unwrap();
        assert!(matches!(r.next_packet(), Err(PcapError::Io(_))));
    }

    #[test]
    fn partial_record_header_is_a_format_error_not_clean_eof() {
        // A file that ends 7 bytes into a record header is corrupt; it must
        // not be silently treated as a clean end of capture.
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, TsResolution::Micro).unwrap();
        let rec = PacketRecord::new(key(1), 100, 0);
        w.write_packet(0, &synthesize_frame(&rec)).unwrap();
        w.into_inner().unwrap();
        file.extend_from_slice(&[0xAB; 7]); // 7 stray bytes of a next header
        let mut r = PcapReader::new(&file[..]).unwrap();
        assert!(r.next_packet().unwrap().is_some());
        match r.next_packet() {
            Err(PcapError::Format(ParseError::Truncated {
                layer: "pcap-record-header",
                needed: 16,
                available: 7,
            })) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn caplen_above_snaplen_is_rejected() {
        // Hand-build a file declaring snaplen 100 and a record claiming 200
        // captured bytes: the record header lies about the file's own limit.
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC_MICRO.to_le_bytes());
        file.extend_from_slice(&2u16.to_le_bytes());
        file.extend_from_slice(&4u16.to_le_bytes());
        file.extend_from_slice(&[0; 8]);
        file.extend_from_slice(&100u32.to_le_bytes()); // snaplen
        file.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        file.extend_from_slice(&[0; 8]); // ts
        file.extend_from_slice(&200u32.to_le_bytes()); // caplen > snaplen
        file.extend_from_slice(&200u32.to_le_bytes());
        file.extend_from_slice(&[0u8; 200]);
        let mut r = PcapReader::new(&file[..]).unwrap();
        assert_eq!(r.snaplen(), 100);
        assert!(matches!(
            r.next_packet(),
            Err(PcapError::Format(ParseError::OversizedPcapRecord { caplen: 200, limit: 100 }))
        ));
    }

    #[test]
    fn zeroed_file_tail_is_an_empty_record_error() {
        // 16 zero bytes decode as caplen 0 / orig_len 0 — the classic
        // zero-filled tail of an interrupted capture. Must error, not loop
        // or yield phantom packets.
        let mut file = Vec::new();
        let w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
        w.into_inner().unwrap();
        file.extend_from_slice(&[0u8; 16]);
        let mut r = PcapReader::new(&file[..]).unwrap();
        assert!(matches!(r.next_packet(), Err(PcapError::Format(ParseError::EmptyPcapRecord))));
    }

    #[test]
    fn zero_caplen_snapped_record_is_still_valid() {
        // caplen 0 with a nonzero orig_len is a legally snapped record; it
        // yields an empty capture that the parse stage then skips.
        let mut file = Vec::new();
        let w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
        w.into_inner().unwrap();
        file.extend_from_slice(&[0u8; 8]); // ts
        file.extend_from_slice(&0u32.to_le_bytes()); // caplen 0
        file.extend_from_slice(&60u32.to_le_bytes()); // orig_len 60
        let mut r = PcapReader::new(&file[..]).unwrap();
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.orig_len, 60);
        assert!(p.data.is_empty());
        assert!(r.next_packet().unwrap().is_none());
        // Through read_records the frame counts as skipped, not as a packet.
        let (records, skipped) = read_records(&file[..]).unwrap();
        assert!(records.is_empty());
        assert_eq!(skipped, 1);
    }

    #[test]
    fn caplen_past_eof_is_an_error_not_a_panic() {
        // Record header claims more captured bytes than the file holds.
        let mut file = Vec::new();
        let w = PcapWriter::new(&mut file, TsResolution::Micro).unwrap();
        w.into_inner().unwrap();
        file.extend_from_slice(&[0u8; 8]);
        file.extend_from_slice(&1000u32.to_le_bytes()); // caplen
        file.extend_from_slice(&1000u32.to_le_bytes()); // orig_len
        file.extend_from_slice(&[0x55; 10]); // only 10 bytes of body
        let mut r = PcapReader::new(&file[..]).unwrap();
        assert!(matches!(r.next_packet(), Err(PcapError::Io(_))));
    }

    #[test]
    fn read_records_skips_unparseable_frames() {
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
        let rec = PacketRecord::new(key(3), 120, 5_000);
        w.write_packet(1_000, &[0u8; 30]).unwrap(); // garbage frame
        w.write_packet(2_000, &synthesize_frame(&rec)).unwrap();
        w.into_inner().unwrap();
        let (records, skipped) = read_records(&file[..]).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, key(3));
        assert_eq!(records[0].ts_nanos, 0, "timestamps rebased to first parsed packet");
    }
}
