//! The per-flow counter query interface shared across the workspace.

use crate::{FlowKey, PacketRecord};

/// A per-flow traffic counter: record packets, query per-flow estimates.
///
/// Implemented by every baseline in `instameasure-baselines` *and* by the
/// full `InstaMeasure` system, so benches and tests can sweep all
/// implementations through one interface. It lives here — in the packet
/// substrate both sides already depend on — rather than in the baselines
/// crate, so the core system does not have to depend on its own
/// competitors to be queryable.
pub trait PerFlowCounter {
    /// Feeds one packet.
    fn record(&mut self, pkt: &PacketRecord);

    /// Estimated packets for the flow.
    fn estimate_packets(&self, key: &FlowKey) -> f64;

    /// Estimated bytes for the flow.
    fn estimate_bytes(&self, key: &FlowKey) -> f64;

    /// Approximate memory footprint in bytes (for like-for-like accuracy
    /// comparisons).
    fn memory_bytes(&self) -> usize;
}
