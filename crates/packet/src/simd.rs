//! Runtime-dispatched AVX2 kernels for the batched hot path.
//!
//! The batched pipeline spends its per-packet arithmetic in exactly two
//! places this module vectorizes: mixing the 13-byte flow key into a
//! [`FlowDigest`] and deriving per-structure lanes from that digest
//! ([`crate::hash::lane_hash`]). Both are chains of the splitmix64
//! finalizer, which AVX2 computes four packets at a time — 64-bit lane
//! xors/shifts map directly onto `__m256i` operations and the wrapping
//! 64-bit multiply is emulated exactly with three 32x32→64 partial
//! products (see [`x4::mullo64`]).
//!
//! # Dispatch rules
//!
//! [`dispatch_tier`] picks the widest kernel the machine and the operator
//! allow, once, and caches the answer:
//!
//! * [`DispatchTier::Avx2`] — x86_64 with AVX2 detected via
//!   `is_x86_feature_detected!` and not disabled.
//! * [`DispatchTier::Scalar`] — everything else, or when the
//!   `INSTAMEASURE_NO_SIMD` environment variable is set (any value), or
//!   after [`set_simd_disabled`]`(true)` (the `--no-simd` CLI switch).
//!
//! The scalar path is not a degraded approximation: it is the oracle. The
//! vector kernels are bit-identical to it for every input (differential
//! tests and fuzz bodies in this crate and `instameasure-sketch` prove
//! this), so flipping the kill switch changes throughput and nothing else.

use crate::digest::FlowDigest;
use crate::hash::lane_hash;
use crate::key::PacketRecord;
use std::sync::atomic::{AtomicU8, Ordering};

/// How many 64-bit lanes one AVX2 kernel step processes.
pub const LANE_WIDTH: usize = 4;

/// The kernel family the hot path dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchTier {
    /// Portable scalar path — the bit-identity oracle.
    Scalar,
    /// 4-wide AVX2 kernels with scalar tails for ragged batches.
    Avx2,
}

impl DispatchTier {
    /// Human-readable tier name, as printed by `serve` and the benches.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            DispatchTier::Scalar => "scalar",
            DispatchTier::Avx2 => "avx2",
        }
    }
}

// 0 = undecided, 1 = simd allowed (env consulted), 2 = forced scalar.
const MODE_UNSET: u8 = 0;
const MODE_AUTO: u8 = 1;
const MODE_FORCED_SCALAR: u8 = 2;
static SIMD_MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn simd_mode() -> u8 {
    match SIMD_MODE.load(Ordering::Relaxed) {
        MODE_UNSET => {
            let mode = if std::env::var_os("INSTAMEASURE_NO_SIMD").is_some() {
                MODE_FORCED_SCALAR
            } else {
                MODE_AUTO
            };
            SIMD_MODE.store(mode, Ordering::Relaxed);
            mode
        }
        m => m,
    }
}

/// Forces (or un-forces) the scalar fallback at runtime.
///
/// This is the programmatic form of the `--no-simd` CLI switch and of the
/// `INSTAMEASURE_NO_SIMD` environment variable; the bench matrix uses it
/// to time both dispatch tiers in one process. Takes effect on the next
/// batch — kernels are chosen per batch, not per process.
pub fn set_simd_disabled(disabled: bool) {
    SIMD_MODE.store(if disabled { MODE_FORCED_SCALAR } else { MODE_AUTO }, Ordering::Relaxed);
}

/// Whether the vector kernels are compiled in and the CPU supports them
/// (ignoring the kill switch).
#[must_use]
pub fn simd_supported() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        false
    }
}

/// The kernel family batched calls will dispatch to right now.
#[must_use]
pub fn dispatch_tier() -> DispatchTier {
    if simd_mode() == MODE_FORCED_SCALAR || !simd_supported() {
        DispatchTier::Scalar
    } else {
        DispatchTier::Avx2
    }
}

/// Whether the vector tier is active (surfaced as the
/// `hotpath.simd_enabled` telemetry gauge).
#[must_use]
pub fn simd_enabled() -> bool {
    dispatch_tier() == DispatchTier::Avx2
}

/// Hot-path-relevant CPU features detected at runtime, for telemetry.
///
/// Each name is surfaced as a `hotpath.cpu.<name>` gauge and joined into
/// the serve startup log; the list is intentionally short — only features
/// a dispatch decision could key on.
#[must_use]
pub fn cpu_features() -> Vec<&'static str> {
    let mut features = Vec::new();
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            features.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("bmi2") {
            features.push("bmi2");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
    }
    features
}

/// `cpu_features()` joined for log lines, `"none"` when empty.
#[must_use]
pub fn cpu_features_label() -> String {
    let features = cpu_features();
    if features.is_empty() {
        "none".to_owned()
    } else {
        features.join("+")
    }
}

/// Digests a batch of packet records, four keys per AVX2 step.
///
/// `out` is cleared and refilled with `FlowDigest::of(&records[i].key)`
/// for every `i` — bit-identical to the scalar loop on every tier, with a
/// scalar tail for `records.len() % LANE_WIDTH != 0`.
pub fn digest_records_into(records: &[PacketRecord], out: &mut Vec<FlowDigest>) {
    out.clear();
    out.reserve(records.len());
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if dispatch_tier() == DispatchTier::Avx2 {
        // SAFETY: dispatch_tier() == Avx2 implies AVX2 was detected.
        unsafe { x4::digest_records_avx2(records, out) };
        return;
    }
    for r in records {
        out.push(FlowDigest::of(&r.key));
    }
}

/// Derives one lane per digest under `seed`, four digests per AVX2 step.
///
/// `out` is cleared and refilled with `digests[i].lane(seed)`; ragged
/// tails fall back to the scalar oracle.
pub fn lane_hashes_into(digests: &[FlowDigest], seed: u64, out: &mut Vec<u64>) {
    out.clear();
    out.reserve(digests.len());
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if dispatch_tier() == DispatchTier::Avx2 {
        // SAFETY: dispatch_tier() == Avx2 implies AVX2 was detected.
        unsafe { x4::lane_hashes_avx2(digests, seed, out) };
        return;
    }
    for d in digests {
        out.push(lane_hash(d.raw(), seed));
    }
}

/// Digests a batch and derives one lane per packet in a single pass.
///
/// Equivalent to [`digest_records_into`] followed by [`lane_hashes_into`]
/// but keeps each digest in registers for its lane mix. This is the
/// front-end kernel of the batched filters: `digests[i]` feeds the WSAF /
/// L2 derivations and `lanes[i]` is the structure's own probe hash.
pub fn digest_lanes_into(
    records: &[PacketRecord],
    seed: u64,
    digests: &mut Vec<FlowDigest>,
    lanes: &mut Vec<u64>,
) {
    digests.clear();
    digests.reserve(records.len());
    lanes.clear();
    lanes.reserve(records.len());
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if dispatch_tier() == DispatchTier::Avx2 {
        // SAFETY: dispatch_tier() == Avx2 implies AVX2 was detected.
        unsafe { x4::digest_lanes_avx2(records, seed, digests, lanes) };
        return;
    }
    for r in records {
        let d = FlowDigest::of(&r.key);
        digests.push(d);
        lanes.push(d.lane(seed));
    }
}

/// The 4-wide AVX2 kernel primitives.
///
/// Exposed (x86_64, non-Miri builds only) so `instameasure-sketch` can
/// build its placement-derivation kernel from the same mixing steps.
/// Everything here is `unsafe` only because of the `target_feature`
/// contract; no pointers are involved beyond slice iteration.
#[cfg(all(target_arch = "x86_64", not(miri)))]
pub mod x4 {
    use super::{FlowDigest, PacketRecord, LANE_WIDTH};
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_mul_epu32, _mm256_or_si256, _mm256_set1_epi64x,
        _mm256_setr_epi64x, _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_xor_si256,
    };

    // Same constants as crate::hash; duplicated here because the scalar
    // module keeps them private and the kernels must match them bit for
    // bit (the golden-value tests below pin both sides).
    const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
    const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
    const MIX_M1: u64 = 0xBF58_476D_1CE4_E5B9;
    const MIX_M2: u64 = 0x94D0_49BB_1331_11EB;

    #[inline]
    fn splat(x: u64) -> __m256i {
        // SAFETY: set1 is available under AVX (implied by the avx2 callers).
        unsafe { _mm256_set1_epi64x(x as i64) }
    }

    /// Reads four u64 lanes out of a vector register.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn to_array(v: __m256i) -> [u64; LANE_WIDTH] {
        let mut out = [0u64; LANE_WIDTH];
        _mm256_storeu_si256(out.as_mut_ptr().cast(), v);
        out
    }

    /// Packs four u64 values into a vector register.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn from_array(v: [u64; LANE_WIDTH]) -> __m256i {
        _mm256_setr_epi64x(v[0] as i64, v[1] as i64, v[2] as i64, v[3] as i64)
    }

    /// Lane-wise wrapping 64-bit multiply (low half), exactly
    /// `a[i].wrapping_mul(b[i])`.
    ///
    /// AVX2 has no 64x64→64 multiply, so compose it from 32x32→64 partial
    /// products: `lo32(a)*lo32(b) + ((lo32(a)*hi32(b) + hi32(a)*lo32(b)) << 32)`.
    /// The `hi*hi` term only affects bits ≥ 64 and is dropped, which is
    /// precisely what wrapping semantics discard too.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn mullo64(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    /// Lane-wise splitmix64 finalizer, exactly [`crate::hash::mix64`].
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn mix64(mut x: __m256i) -> __m256i {
        x = _mm256_xor_si256(x, _mm256_srli_epi64::<30>(x));
        x = mullo64(x, splat(MIX_M1));
        x = _mm256_xor_si256(x, _mm256_srli_epi64::<27>(x));
        x = mullo64(x, splat(MIX_M2));
        _mm256_xor_si256(x, _mm256_srli_epi64::<31>(x))
    }

    /// Lane-wise `rotate_left(31)`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn rotl31(x: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi64::<31>(x), _mm256_srli_epi64::<33>(x))
    }

    /// Four flow hashes at once from pre-gathered key lanes, exactly
    /// [`crate::hash::flow_hash64`] per lane.
    ///
    /// `lo`/`hi` carry the two overlapping little-endian 8-byte windows of
    /// each 13-byte key (bytes 0..8 and 5..13).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn flow_hash4(lo: __m256i, hi: __m256i, seed: u64) -> __m256i {
        let mut acc = splat(seed.wrapping_mul(PRIME_1) ^ PRIME_3);
        acc = mix64(_mm256_xor_si256(acc, mullo64(lo, splat(PRIME_2))));
        acc = mix64(_mm256_xor_si256(rotl31(acc), mullo64(hi, splat(PRIME_1))));
        mix64(_mm256_xor_si256(acc, splat(13u64.wrapping_mul(PRIME_3))))
    }

    /// Four lane hashes at once, exactly [`crate::hash::lane_hash`] per
    /// lane.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn lane_hash4(digests: __m256i, seed: u64) -> __m256i {
        mix64(_mm256_xor_si256(digests, splat(seed.wrapping_mul(PRIME_2) ^ PRIME_1)))
    }

    /// Gathers the two overlapping key lanes for four consecutive records.
    #[inline]
    fn gather_key_lanes(records: &[PacketRecord]) -> ([u64; LANE_WIDTH], [u64; LANE_WIDTH]) {
        let mut lo = [0u64; LANE_WIDTH];
        let mut hi = [0u64; LANE_WIDTH];
        for (i, r) in records.iter().take(LANE_WIDTH).enumerate() {
            let b = r.key.to_bytes();
            lo[i] = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
            hi[i] = u64::from_le_bytes([b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12]]);
        }
        (lo, hi)
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn digest_records_avx2(records: &[PacketRecord], out: &mut Vec<FlowDigest>) {
        let mut chunks = records.chunks_exact(LANE_WIDTH);
        for chunk in &mut chunks {
            let (lo, hi) = gather_key_lanes(chunk);
            let d = flow_hash4(from_array(lo), from_array(hi), crate::digest::DIGEST_SEED);
            out.extend(to_array(d).into_iter().map(FlowDigest::from_raw));
        }
        for r in chunks.remainder() {
            out.push(FlowDigest::of(&r.key));
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lane_hashes_avx2(digests: &[FlowDigest], seed: u64, out: &mut Vec<u64>) {
        let mut chunks = digests.chunks_exact(LANE_WIDTH);
        for chunk in &mut chunks {
            let mut raw = [0u64; LANE_WIDTH];
            for (i, d) in chunk.iter().enumerate() {
                raw[i] = d.raw();
            }
            out.extend_from_slice(&to_array(lane_hash4(from_array(raw), seed)));
        }
        for d in chunks.remainder() {
            out.push(super::lane_hash(d.raw(), seed));
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn digest_lanes_avx2(
        records: &[PacketRecord],
        seed: u64,
        digests: &mut Vec<FlowDigest>,
        lanes: &mut Vec<u64>,
    ) {
        let mut chunks = records.chunks_exact(LANE_WIDTH);
        for chunk in &mut chunks {
            let (lo, hi) = gather_key_lanes(chunk);
            let d = flow_hash4(from_array(lo), from_array(hi), crate::digest::DIGEST_SEED);
            digests.extend(to_array(d).into_iter().map(FlowDigest::from_raw));
            lanes.extend_from_slice(&to_array(lane_hash4(d, seed)));
        }
        for r in chunks.remainder() {
            let d = FlowDigest::of(&r.key);
            digests.push(d);
            lanes.push(d.lane(seed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::mix64 as scalar_mix64;
    use crate::{FlowKey, Protocol};

    fn record(i: u64) -> PacketRecord {
        let key = FlowKey::new(
            (i as u32).to_be_bytes(),
            ((i as u32).wrapping_mul(2_654_435_761)).to_be_bytes(),
            (i % 60000) as u16,
            443,
            if i.is_multiple_of(3) { Protocol::Udp } else { Protocol::Tcp },
        );
        PacketRecord::new(key, 64, i)
    }

    #[test]
    fn tier_label_is_stable() {
        assert_eq!(DispatchTier::Scalar.label(), "scalar");
        assert_eq!(DispatchTier::Avx2.label(), "avx2");
    }

    #[test]
    fn kill_switch_forces_scalar_and_back() {
        let before = dispatch_tier();
        set_simd_disabled(true);
        assert_eq!(dispatch_tier(), DispatchTier::Scalar);
        assert!(!simd_enabled());
        set_simd_disabled(false);
        assert_eq!(
            dispatch_tier(),
            if simd_supported() { DispatchTier::Avx2 } else { DispatchTier::Scalar }
        );
        // Leave the process-global switch the way the process started.
        set_simd_disabled(before == DispatchTier::Scalar && simd_supported());
    }

    #[test]
    fn features_label_joins_or_none() {
        let label = cpu_features_label();
        if cpu_features().is_empty() {
            assert_eq!(label, "none");
        } else {
            assert!(label.split('+').count() == cpu_features().len());
        }
    }

    #[test]
    fn batch_entry_points_match_scalar_oracle_on_every_length() {
        // Covers all tail residues 0..LANE_WIDTH plus longer ragged runs.
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 64, 100] {
            let records: Vec<PacketRecord> = (0..len as u64).map(record).collect();
            let mut digests = Vec::new();
            digest_records_into(&records, &mut digests);
            let expected: Vec<FlowDigest> =
                records.iter().map(|r| FlowDigest::of(&r.key)).collect();
            assert_eq!(digests, expected, "digest mismatch at len {len}");

            let seed = 0x5EED_0000_0000_0001 ^ len as u64;
            let mut lanes = Vec::new();
            lane_hashes_into(&digests, seed, &mut lanes);
            let expected_lanes: Vec<u64> = digests.iter().map(|d| d.lane(seed)).collect();
            assert_eq!(lanes, expected_lanes, "lane mismatch at len {len}");

            let (mut d2, mut l2) = (Vec::new(), Vec::new());
            digest_lanes_into(&records, seed, &mut d2, &mut l2);
            assert_eq!(d2, expected, "fused digest mismatch at len {len}");
            assert_eq!(l2, expected_lanes, "fused lane mismatch at len {len}");
        }
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn avx2_kernels_match_scalar_bit_for_bit() {
        if !simd_supported() {
            return;
        }
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            state
        };
        for _ in 0..256 {
            let vals = [next(), next(), next(), next()];
            let muls = [next(), next(), next(), next()];
            let seed = next();
            // SAFETY: simd_supported() checked AVX2 above.
            unsafe {
                let v = x4::from_array(vals);
                assert_eq!(x4::to_array(v), vals);
                let m = x4::to_array(x4::mullo64(v, x4::from_array(muls)));
                let x = x4::to_array(x4::mix64(v));
                let r = x4::to_array(x4::rotl31(v));
                let l = x4::to_array(x4::lane_hash4(v, seed));
                for i in 0..LANE_WIDTH {
                    assert_eq!(m[i], vals[i].wrapping_mul(muls[i]));
                    assert_eq!(x[i], scalar_mix64(vals[i]));
                    assert_eq!(r[i], vals[i].rotate_left(31));
                    assert_eq!(l[i], crate::hash::lane_hash(vals[i], seed));
                }
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn avx2_mix64_golden_value() {
        if !simd_supported() {
            return;
        }
        // mix64(1) is pinned in hash.rs; the vector kernel must agree.
        // SAFETY: simd_supported() checked AVX2 above.
        unsafe {
            let out = x4::to_array(x4::mix64(x4::from_array([1, 1, 1, 1])));
            assert_eq!(out, [0x5692_161D_100B_05E5u64; 4]);
        }
    }
}
