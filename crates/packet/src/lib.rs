//! Packet substrate for the InstaMeasure reproduction.
//!
//! This crate provides everything the measurement pipeline needs to talk
//! about network traffic:
//!
//! * [`FlowKey`] — the L4 5-tuple (source/destination IPv4 address and port,
//!   protocol) that identifies a flow, exactly as the paper measures flows.
//! * [`PacketRecord`] — the minimal per-packet record the pipeline consumes:
//!   a flow key, a wire length and a timestamp.
//! * [`PerFlowCounter`] — the query interface every counting structure in
//!   the workspace (baselines and the full system alike) implements.
//! * [`hash`] — a fast, seedable, dependency-free 64-bit flow hash with the
//!   statistical quality the sketches require.
//! * [`FlowDigest`] — the hash-once digest the batched hot path computes
//!   once per packet; every structure derives its own independent lane
//!   from it instead of rehashing the key bytes.
//! * [`prefetch`] — best-effort software prefetch hints (x86_64
//!   `_mm_prefetch`, portable no-op elsewhere) the batch loops use to
//!   overlap DRAM latency across packets.
//! * [`simd`] — runtime-dispatched AVX2 kernels (4-wide digest and lane
//!   mixing) with the scalar path retained as the bit-identity oracle and
//!   an `INSTAMEASURE_NO_SIMD` kill switch.
//! * [`parse`] — zero-copy parsers for Ethernet II (+ 802.1Q VLAN), IPv4,
//!   TCP, UDP and ICMP headers.
//! * [`ipv6`] — IPv6 (with extension headers) parsed and mapped into the
//!   104-bit measurement keyspace via deterministic pseudo-addresses.
//! * [`pcap`] — a from-scratch reader/writer for the classic libpcap file
//!   format (both endiannesses, micro- and nanosecond variants).
//! * [`chunk`] — zero-copy streaming ingest: an mmap-backed (with a chunked
//!   read fallback) [`chunk::PcapChunkReader`] yielding borrowed
//!   [`chunk::PacketView`]s, and a borrow-based [`chunk::parse_packet_view`]
//!   that refills a reusable [`PacketRecord`] without allocating.
//! * [`synth`] — synthesis of well-formed Ethernet/IPv4/TCP/UDP frames from
//!   a [`PacketRecord`], so generated traces can be written to pcap files
//!   and read back through the real parsing path.
//!
//! # Example
//!
//! ```
//! use instameasure_packet::{FlowKey, PacketRecord, Protocol};
//!
//! let key = FlowKey::new([10, 0, 0, 1], [192, 168, 0, 7], 443, 50512, Protocol::Tcp);
//! let pkt = PacketRecord::new(key, 1500, 1_000_000);
//! assert_eq!(pkt.key.protocol, Protocol::Tcp);
//! let frame = instameasure_packet::synth::synthesize_frame(&pkt);
//! let parsed = instameasure_packet::parse::parse_ethernet(&frame).unwrap();
//! assert_eq!(parsed.key, key);
//! ```

// `deny` rather than `forbid`: the mmap module (raw mmap/munmap FFI), the
// prefetch module (`_mm_prefetch` hint intrinsic) and the simd module
// (`target_feature` AVX2 kernels) carry the crate's only
// `#[allow(unsafe_code)]`s.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
mod counter;
mod digest;
mod error;
#[doc(hidden)]
pub mod fuzzing;
pub mod hash;
pub mod ipv6;
mod key;
#[allow(unsafe_code)]
mod mmap;
pub mod parse;
pub mod pcap;
#[allow(unsafe_code)]
pub mod prefetch;
#[allow(unsafe_code)]
pub mod simd;
pub mod synth;

pub use counter::PerFlowCounter;
pub use digest::{FlowDigest, DIGEST_SEED};
pub use error::ParseError;
pub use key::{FlowKey, PacketRecord, Protocol};
