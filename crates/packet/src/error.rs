//! Error types for parsing and pcap I/O.

use core::fmt;

/// Errors produced while parsing frames or pcap files.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The buffer ended before the expected header was complete.
    Truncated {
        /// What was being parsed when the data ran out.
        layer: &'static str,
        /// Bytes required to finish the header.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The EtherType is not one this crate understands (not IPv4/VLAN).
    UnsupportedEtherType(u16),
    /// The IP version nibble was not 4.
    UnsupportedIpVersion(u8),
    /// An IPv4 header declared an IHL below the legal minimum of 5 words.
    BadIpv4HeaderLength(u8),
    /// The pcap global header magic was not recognised.
    BadPcapMagic(u32),
    /// A pcap record declared a capture length larger than the file allows.
    OversizedPcapRecord {
        /// Declared captured length.
        caplen: u32,
        /// The sanity limit applied by the reader.
        limit: u32,
    },
    /// A pcap record header declared both a zero captured length and a zero
    /// original length — the signature of a zeroed/corrupt file tail, never
    /// produced by a real capture.
    EmptyPcapRecord,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { layer, needed, available } => {
                write!(f, "truncated {layer} header: need {needed} bytes, have {available}")
            }
            ParseError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype {t:#06x}"),
            ParseError::UnsupportedIpVersion(v) => write!(f, "unsupported IP version {v}"),
            ParseError::BadIpv4HeaderLength(ihl) => write!(f, "invalid IPv4 IHL {ihl}"),
            ParseError::BadPcapMagic(m) => write!(f, "unrecognised pcap magic {m:#010x}"),
            ParseError::OversizedPcapRecord { caplen, limit } => {
                write!(f, "pcap record caplen {caplen} exceeds limit {limit}")
            }
            ParseError::EmptyPcapRecord => {
                write!(f, "pcap record with zero captured and original length (corrupt header)")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ParseError::Truncated { layer: "ipv4", needed: 20, available: 3 };
        assert_eq!(e.to_string(), "truncated ipv4 header: need 20 bytes, have 3");
        assert!(ParseError::BadPcapMagic(0xdeadbeef).to_string().contains("0xdeadbeef"));
        assert!(ParseError::UnsupportedEtherType(0x86DD).to_string().contains("0x86dd"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ParseError>();
    }
}
