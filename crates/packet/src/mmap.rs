//! A minimal read-only memory map used by the zero-copy pcap reader.
//!
//! This is the only unsafe code in the crate, kept deliberately tiny: map a
//! whole file `PROT_READ`/`MAP_PRIVATE`, expose it as a byte slice, unmap on
//! drop. The raw `mmap`/`munmap` symbols come from the C runtime that `std`
//! already links, so no external crate is needed.
//!
//! On targets where the wrapper is not supported (non-unix, 32-bit, or under
//! Miri, whose interpreter cannot execute foreign mmap calls) [`Mmap::map`]
//! returns an error and callers fall back to the chunked [`std::io::Read`]
//! path — same records, one extra copy.
//!
//! # Soundness caveat
//!
//! Like every file-backed mapping, the returned slice is only as stable as
//! the file: truncating the file while it is mapped can fault (`SIGBUS`).
//! The measurement pipeline reads finished capture files, where this is the
//! standard and accepted trade-off.

#[cfg(all(unix, target_pointer_width = "64", not(miri)))]
mod imp {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    use core::ffi::c_void;
    use core::ptr::NonNull;

    #[allow(non_camel_case_types)]
    type c_int = i32;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    /// A read-only private mapping of an entire file.
    #[derive(Debug)]
    pub struct Mmap {
        ptr: NonNull<c_void>,
        len: usize,
    }

    // SAFETY: the mapping is read-only and owned; nothing aliases it
    // mutably, so sharing or moving it across threads is sound.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps the whole file read-only. Empty files are rejected (mapping
        /// zero bytes is `EINVAL`); callers use the buffered fallback.
        pub fn map(file: &File) -> io::Result<Mmap> {
            let len = file.metadata()?.len();
            if len == 0 {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, "cannot map empty file"));
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large"))?;
            // SAFETY: len is nonzero, the fd is valid for the duration of
            // the call, and we request a fresh read-only private mapping at
            // a kernel-chosen address.
            let ptr = unsafe {
                mmap(core::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            let ptr = NonNull::new(ptr).ok_or_else(|| io::Error::other("mmap returned null"))?;
            Ok(Mmap { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr..ptr+len is a live PROT_READ mapping owned by
            // self; it stays valid until Drop unmaps it, and the borrow of
            // self prevents use-after-unmap.
            unsafe { core::slice::from_raw_parts(self.ptr.as_ptr().cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: exactly the region returned by mmap in map(); unmapped
            // once, here.
            unsafe {
                munmap(self.ptr.as_ptr(), self.len);
            }
        }
    }
}

#[cfg(not(all(unix, target_pointer_width = "64", not(miri))))]
mod imp {
    use std::fs::File;
    use std::io;

    /// Stub on unsupported targets: [`Mmap::map`] always errors, steering
    /// callers onto the chunked read fallback.
    #[derive(Debug)]
    pub struct Mmap {
        never: core::convert::Infallible,
    }

    impl Mmap {
        /// Always fails on this target.
        pub fn map(_file: &File) -> io::Result<Mmap> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "mmap unavailable on this target"))
        }

        /// Unreachable: no `Mmap` value can exist on this target.
        pub fn as_slice(&self) -> &[u8] {
            match self.never {}
        }
    }
}

pub(crate) use imp::Mmap;
