//! Hash-once flow digests for the batched hot path.
//!
//! Every measurement structure (RCC L1, RCC L2, the WSAF table) needs its
//! own statistically independent hash of the same 13-byte flow key. The
//! naive pipeline rehashes the key bytes once per structure; at line rate
//! that is two to four avoidable `flow_hash64` evaluations per packet. A
//! [`FlowDigest`] is computed once per packet and each structure derives
//! its lane from it with a single finalizing mix ([`hash::lane_hash`]),
//! keeping the lanes independent without touching the key bytes again.

use crate::hash::{self, flow_hash64};
use crate::FlowKey;

/// Seed under which the once-per-packet digest hash is computed.
///
/// Deliberately distinct from every structure seed in the workspace: the
/// digest is an *intermediate* value, never used to index a structure
/// directly, so no structure's placement collapses onto the raw digest.
pub const DIGEST_SEED: u64 = 0xD16E_5700_F10E_55ED;

/// A 64-bit flow digest computed once per packet.
///
/// Wraps the raw `flow_hash64(key, DIGEST_SEED)` value. Structures derive
/// their own hash via [`FlowDigest::lane`] with their configured seed; the
/// derivation is a bijective finalizer, so lanes inherit the full avalanche
/// quality of the underlying hash.
///
/// # Example
///
/// ```
/// use instameasure_packet::{FlowDigest, FlowKey, Protocol};
/// let k = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 80, 443, Protocol::Tcp);
/// let d = FlowDigest::of(&k);
/// assert_eq!(d, FlowDigest::of(&k));
/// assert_ne!(d.lane(1), d.lane(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowDigest(u64);

impl FlowDigest {
    /// Computes the digest of a flow key (the one hash of the key bytes
    /// the hot path performs per packet).
    #[inline]
    #[must_use]
    pub fn of(key: &FlowKey) -> Self {
        FlowDigest(flow_hash64(key, DIGEST_SEED))
    }

    /// Wraps a raw digest value (for wire formats and tests).
    #[inline]
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        FlowDigest(raw)
    }

    /// The raw 64-bit digest value.
    #[inline]
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Derives the hash lane for a structure seeded with `seed`.
    #[inline]
    #[must_use]
    pub fn lane(self, seed: u64) -> u64 {
        hash::lane_hash(self.0, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(
            i.to_be_bytes(),
            (i.wrapping_mul(2_654_435_761)).to_be_bytes(),
            (i % 65_536) as u16,
            443,
            Protocol::Tcp,
        )
    }

    #[test]
    fn digest_matches_flow_hash() {
        let k = key(7);
        assert_eq!(FlowDigest::of(&k).raw(), flow_hash64(&k, DIGEST_SEED));
        assert_eq!(FlowDigest::from_raw(42).raw(), 42);
    }

    #[test]
    fn lanes_are_deterministic_and_seed_dependent() {
        let d = FlowDigest::of(&key(3));
        assert_eq!(d.lane(0x57AF), d.lane(0x57AF));
        assert_ne!(d.lane(0x57AF), d.lane(0x57B0));
        assert_ne!(d.lane(0), d.raw());
    }

    #[test]
    fn lanes_have_no_collisions_on_small_universe() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..100_000u32 {
            seen.insert(FlowDigest::of(&key(i)).lane(0x10E2));
        }
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn lane_avalanche_quality() {
        // Lanes must inherit avalanche: flipping one key bit flips ~half
        // the lane bits for every structure seed, not just the digest.
        let base = key(12_345);
        for seed in [0u64, 0x57AF, 0x10E2_5EED] {
            let l0 = FlowDigest::of(&base).lane(seed);
            let mut total_bits = 0u32;
            let mut samples = 0u32;
            for byte in 0..13 {
                for bit in 0..8 {
                    let mut b = base.to_bytes();
                    b[byte] ^= 1 << bit;
                    let flipped = FlowKey::from_bytes(b);
                    total_bits += (l0 ^ FlowDigest::of(&flipped).lane(seed)).count_ones();
                    samples += 1;
                }
            }
            let avg = f64::from(total_bits) / f64::from(samples);
            assert!((24.0..40.0).contains(&avg), "seed {seed:#x}: avalanche {avg} out of range");
        }
    }

    #[test]
    fn cross_lane_independence() {
        // Two lanes of the same digest should look like independent hashes:
        // their XOR should itself be balanced, not structured.
        let mut total_bits = 0u32;
        let n = 4_096u32;
        for i in 0..n {
            let d = FlowDigest::of(&key(i));
            total_bits += (d.lane(1) ^ d.lane(2)).count_ones();
        }
        let avg = f64::from(total_bits) / f64::from(n);
        assert!((30.0..34.0).contains(&avg), "cross-lane xor average {avg}");
    }
}

#[cfg(test)]
mod golden_tests {
    use super::*;
    use crate::Protocol;

    /// Pins the digest and lane derivation across refactors: sketch and
    /// WSAF placements are functions of these values, so silently changing
    /// them would invalidate cross-version comparisons of exported state.
    #[test]
    fn digest_golden_values() {
        let k = FlowKey::new([192, 168, 1, 1], [10, 0, 0, 1], 443, 51_234, Protocol::Tcp);
        let d = FlowDigest::of(&k);
        assert_eq!(d.raw(), 0xDAF6_E3A8_23F0_9C68);
        assert_eq!(d.lane(0), 0x8772_9C57_AD59_A9BF);
        assert_eq!(d.lane(0x57AF), 0xDB87_E814_5887_A101);
    }
}
