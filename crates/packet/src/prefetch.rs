//! Best-effort software prefetch hints for the batched hot path.
//!
//! The batched encode/accumulate loops know the DRAM addresses packet
//! `i + K` will touch while they are still finishing packet `i` (the hash
//! determines the RCC counter word and the first WSAF probe slot). Issuing
//! a prefetch hint for those addresses overlaps the DRAM latency of the
//! next packets with the arithmetic of the current one.
//!
//! Prefetching is purely a hint: it never changes observable behaviour, so
//! the scalar and batched paths stay bit-identical with or without it. On
//! targets without a stable prefetch intrinsic the functions compile to
//! nothing ([`prefetch_enabled`] reports which case was built).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default for how many packets ahead the batched loops prefetch.
///
/// Large enough to cover one DRAM round trip (~80 ns) at the per-packet
/// arithmetic cost of the RCC encode (~10 ns of position-draw mixing);
/// small enough that the prefetched lines are still resident in L1/L2 when
/// their packet is processed and that ragged batch tails waste little work.
/// The live value is [`prefetch_distance`], tunable per process; the
/// `hot_path` bench sweeps it to pick the winner for a machine.
pub const PREFETCH_DISTANCE: usize = 8;

/// Distances outside `1..=MAX_PREFETCH_DISTANCE` are clamped: 0 would
/// prefetch the line the loop is already touching, and anything past one
/// full batch-tail's worth of lines just evicts useful data.
pub const MAX_PREFETCH_DISTANCE: usize = 64;

// usize::MAX = not yet initialized from the environment.
static DISTANCE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// How many packets ahead the batched loops prefetch right now.
///
/// Resolved once from `INSTAMEASURE_PREFETCH_DISTANCE` (clamped to
/// `1..=`[`MAX_PREFETCH_DISTANCE`], falling back to
/// [`PREFETCH_DISTANCE`] when unset or unparsable) and cached; later
/// [`set_prefetch_distance`] calls override it. Purely a tuning knob —
/// the batched paths stay bit-identical to scalar at every distance.
#[inline]
#[must_use]
pub fn prefetch_distance() -> usize {
    let d = DISTANCE.load(Ordering::Relaxed);
    if d != usize::MAX {
        return d;
    }
    let resolved = std::env::var("INSTAMEASURE_PREFETCH_DISTANCE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(PREFETCH_DISTANCE)
        .clamp(1, MAX_PREFETCH_DISTANCE);
    DISTANCE.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the prefetch distance for this process (clamped to
/// `1..=`[`MAX_PREFETCH_DISTANCE`]); the bench matrix uses this to sweep
/// distances without respawning.
pub fn set_prefetch_distance(distance: usize) {
    DISTANCE.store(distance.clamp(1, MAX_PREFETCH_DISTANCE), Ordering::Relaxed);
}

/// Whether prefetch hints compile to real instructions on this target.
///
/// Surfaced as the `hotpath.prefetch_enabled` telemetry gauge so a metrics
/// scrape shows which hot path a deployment is actually running.
#[must_use]
pub const fn prefetch_enabled() -> bool {
    cfg!(target_arch = "x86_64")
}

/// Issues a read prefetch hint for `slice[idx]`.
///
/// Out-of-range indices are ignored, so ragged tails need no bounds
/// arithmetic at the call site. On non-x86_64 targets this is a no-op.
#[inline]
pub fn prefetch_read_index<T>(slice: &[T], idx: usize) {
    if let Some(r) = slice.get(idx) {
        prefetch_read(r);
    }
}

/// Issues a read prefetch hint for the cache line holding `r`.
///
/// On non-x86_64 targets this is a no-op.
#[inline]
pub fn prefetch_read<T>(r: &T) {
    // Gated out under Miri like the mmap FFI: the hint lowers to an LLVM
    // intrinsic the interpreter has no reason to model.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: `_mm_prefetch` is an architectural hint with no observable
    // effect on memory or registers; the pointer comes from a live
    // reference, so it is valid to hint on.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(core::ptr::from_ref(r).cast::<i8>());
    }
    #[cfg(any(not(target_arch = "x86_64"), miri))]
    let _ = r;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_side_effect_free() {
        let data = vec![7u64; 1024];
        prefetch_read(&data[0]);
        prefetch_read_index(&data, 512);
        assert!(data.iter().all(|&x| x == 7));
    }

    #[test]
    fn out_of_range_index_is_ignored() {
        let data = [1u8, 2, 3];
        prefetch_read_index(&data, 3);
        prefetch_read_index(&data, usize::MAX);
        let empty: [u64; 0] = [];
        prefetch_read_index(&empty, 0);
    }

    #[test]
    fn enabled_matches_target() {
        assert_eq!(prefetch_enabled(), cfg!(target_arch = "x86_64"));
    }

    #[test]
    fn distance_is_sane() {
        // The batched loops rely on the distance being small relative to
        // any realistic batch and nonzero (0 would prefetch the line the
        // loop is already touching).
        let k = PREFETCH_DISTANCE;
        assert!((1..=MAX_PREFETCH_DISTANCE).contains(&k));
    }

    #[test]
    fn runtime_distance_clamps_and_overrides() {
        let initial = prefetch_distance();
        assert!((1..=MAX_PREFETCH_DISTANCE).contains(&initial));
        set_prefetch_distance(16);
        assert_eq!(prefetch_distance(), 16);
        set_prefetch_distance(0);
        assert_eq!(prefetch_distance(), 1);
        set_prefetch_distance(usize::MAX);
        assert_eq!(prefetch_distance(), MAX_PREFETCH_DISTANCE);
        set_prefetch_distance(initial);
    }
}
