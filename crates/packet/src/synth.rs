//! Synthesis of well-formed frames from [`PacketRecord`]s.
//!
//! The traffic generators produce [`PacketRecord`]s; to exercise the real
//! capture path (pcap file → parser → pipeline) we synthesize minimal but
//! valid Ethernet II / IPv4 / {TCP,UDP,ICMP} frames from them. The IPv4
//! total-length field carries the record's wire length (minus the Ethernet
//! header) so byte counting survives the round trip.

use crate::parse::{internet_checksum, ETHERNET_HEADER_LEN, ETHERTYPE_IPV4};
use crate::{PacketRecord, Protocol};

/// Minimum frame a synthesized packet can occupy: Ethernet + IPv4 + a full
/// 20-byte TCP header (54 bytes — just under the 60-byte Ethernet minimum,
/// which real captures also undercut once the FCS is stripped).
pub const MIN_FRAME_LEN: usize = ETHERNET_HEADER_LEN + 20 + 20;

/// Synthesizes a valid frame for `record`.
///
/// The frame is `max(record.wire_len, MIN_FRAME_LEN)` bytes long; the IPv4
/// `total_length` is set to the frame length minus the Ethernet header so
/// that [`crate::parse::parse_ethernet`] recovers the same flow key and a
/// consistent byte count. The IPv4 header checksum is valid.
///
/// # Example
///
/// ```
/// use instameasure_packet::{synth, parse, FlowKey, PacketRecord, Protocol};
/// let key = FlowKey::new([9, 9, 9, 9], [8, 8, 8, 8], 4000, 22, Protocol::Tcp);
/// let frame = synth::synthesize_frame(&PacketRecord::new(key, 1500, 7));
/// assert_eq!(frame.len(), 1500);
/// assert_eq!(parse::parse_ethernet(&frame).unwrap().key, key);
/// ```
#[must_use]
pub fn synthesize_frame(record: &PacketRecord) -> Vec<u8> {
    let frame_len = usize::from(record.wire_len).max(MIN_FRAME_LEN);
    let mut frame = vec![0u8; frame_len];

    // Ethernet II: locally-administered MACs derived from the IPs.
    frame[0] = 0x02;
    frame[1..5].copy_from_slice(&record.key.dst_ip);
    frame[6] = 0x02;
    frame[7..11].copy_from_slice(&record.key.src_ip);
    frame[12..14].copy_from_slice(&ETHERTYPE_IPV4.to_be_bytes());

    // IPv4 header.
    let ip_len = (frame_len - ETHERNET_HEADER_LEN) as u16;
    let ip = &mut frame[ETHERNET_HEADER_LEN..];
    ip[0] = 0x45; // version 4, IHL 5
    ip[2..4].copy_from_slice(&ip_len.to_be_bytes());
    ip[8] = 64; // TTL
    ip[9] = record.key.protocol.number();
    ip[12..16].copy_from_slice(&record.key.src_ip);
    ip[16..20].copy_from_slice(&record.key.dst_ip);
    let csum = internet_checksum(&ip[..20]);
    ip[10..12].copy_from_slice(&csum.to_be_bytes());

    // L4 header: only the port fields matter to the pipeline.
    if matches!(record.key.protocol, Protocol::Tcp | Protocol::Udp) {
        ip[20..22].copy_from_slice(&record.key.src_port.to_be_bytes());
        ip[22..24].copy_from_slice(&record.key.dst_port.to_be_bytes());
        if record.key.protocol == Protocol::Udp {
            let udp_len = ip_len.saturating_sub(20);
            ip[24..26].copy_from_slice(&udp_len.to_be_bytes());
        } else {
            // Minimal TCP: data offset 5 words.
            ip[32] = 0x50;
        }
    }

    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ethernet;
    use crate::FlowKey;

    #[test]
    fn short_records_are_padded_to_minimum() {
        let key = FlowKey::new([1, 0, 0, 1], [1, 0, 0, 2], 1, 2, Protocol::Udp);
        let frame = synthesize_frame(&PacketRecord::new(key, 10, 0));
        assert_eq!(frame.len(), MIN_FRAME_LEN);
        assert_eq!(parse_ethernet(&frame).unwrap().key, key);
    }

    #[test]
    fn ip_total_len_tracks_frame_len() {
        let key = FlowKey::new([1, 0, 0, 1], [1, 0, 0, 2], 1, 2, Protocol::Tcp);
        let frame = synthesize_frame(&PacketRecord::new(key, 999, 0));
        let p = parse_ethernet(&frame).unwrap();
        assert_eq!(usize::from(p.ip_total_len), 999 - ETHERNET_HEADER_LEN);
    }

    #[test]
    fn udp_length_field_is_consistent() {
        let key = FlowKey::new([1, 0, 0, 1], [1, 0, 0, 2], 5000, 53, Protocol::Udp);
        let frame = synthesize_frame(&PacketRecord::new(key, 100, 0));
        let udp = &frame[ETHERNET_HEADER_LEN + 20..];
        let udp_len = u16::from_be_bytes([udp[4], udp[5]]);
        assert_eq!(usize::from(udp_len), 100 - ETHERNET_HEADER_LEN - 20);
    }
}
