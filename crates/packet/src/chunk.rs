//! Zero-copy streaming pcap ingest.
//!
//! [`crate::pcap::PcapReader`] allocates a fresh `Vec<u8>` for every record,
//! which makes the *reader* the per-packet hot path once the measurement
//! pipeline itself is batched. This module removes that cost:
//!
//! * [`PcapChunkReader`] maps the whole file (falling back to a chunked
//!   [`Read`] buffer when mmap is unavailable) and yields [`PacketView`]s —
//!   records *borrowed* out of the mapped/buffered bytes, no per-packet
//!   allocation or copy.
//! * [`parse_packet_view`] turns a view into a [`PacketRecord`] in place,
//!   reusing the caller's record.
//! * [`RecordStream`] bridges views straight into any consumer of
//!   `Iterator<Item = PacketRecord>` — in particular the multi-core
//!   pipeline's recycled dispatch batches — so the steady state performs
//!   zero per-packet heap allocations end to end.
//!
//! The zero-copy path is **bit-identical** to the owned-buffer path: same
//! records, same skip rule for unparseable frames, same timestamp rebasing.
//! The differential suites (`tests/prop_chunk_roundtrip.rs` in this crate,
//! `tests/zero_copy_ingest.rs` at the workspace root) pin this down.
//!
//! # Example
//!
//! ```
//! use instameasure_packet::chunk::PcapChunkReader;
//! use instameasure_packet::pcap::{PcapWriter, TsResolution};
//! use instameasure_packet::{synth, FlowKey, PacketRecord, Protocol};
//!
//! let key = FlowKey::new([1, 2, 3, 4], [4, 3, 2, 1], 123, 80, Protocol::Tcp);
//! let rec = PacketRecord::new(key, 300, 1_500);
//! let mut file = Vec::new();
//! let mut w = PcapWriter::new(&mut file, TsResolution::Nano)?;
//! w.write_packet(rec.ts_nanos, &synth::synthesize_frame(&rec))?;
//! drop(w);
//!
//! let mut r = PcapChunkReader::from_reader(&file[..])?;
//! while let Some(view) = r.next_view()? {
//!     assert_eq!(view.ts_nanos, 1_500);
//!     assert_eq!(instameasure_packet::parse::parse_ethernet(view.data)?.key, key);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

use crate::mmap::Mmap;
use crate::pcap::{
    caplen_limit, parse_global_header, parse_record_header, PcapError, TsResolution,
};
use crate::{FlowKey, PacketRecord, ParseError, Protocol};

/// Default chunk size for the buffered fallback path (4 MiB): large enough
/// that refills — and the tail-carry copy each refill implies — are rare.
pub const DEFAULT_CHUNK_SIZE: usize = 4 << 20;

/// One packet record borrowed out of the reader's current chunk. Valid
/// until the next call that advances the reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView<'a> {
    /// Timestamp in nanoseconds since the Unix epoch (converted from the
    /// file's native resolution).
    pub ts_nanos: u64,
    /// Original on-the-wire length.
    pub orig_len: u32,
    /// Captured bytes, borrowed from the mapped file or the chunk buffer.
    pub data: &'a [u8],
}

/// How ingest moved bytes: the counters behind the `ingest.chunk_*`
/// telemetry emitted by the multi-core bridge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Buffer refills (streamed path) or whole-file mappings (mmap path).
    pub chunk_fills: u64,
    /// Bytes made visible to the parser in bulk: the mapped file length, or
    /// the total bytes read into the chunk buffer on the fallback path.
    pub bytes_mapped: u64,
    /// Copies the zero-copy path could not avoid: one per failed mmap (the
    /// whole file then flows through the read buffer) plus one per partial
    /// record carried across a chunk boundary.
    pub copy_fallbacks: u64,
    /// Pcap records yielded as views (parseable or not).
    pub records: u64,
}

#[derive(Debug)]
enum Source<R> {
    /// The whole file, mapped. `pos` is the read cursor.
    Mapped { map: Mmap, pos: usize },
    /// Chunked reads into a reusable buffer; `buf[start..end]` is unread.
    Streamed { inner: R, buf: Vec<u8>, start: usize, end: usize, chunk_size: usize, eof: bool },
}

/// Zero-copy streaming reader for classic pcap files.
///
/// Yields [`PacketView`]s borrowed from an mmap of the file, or — when
/// mapping is unavailable (non-unix, Miri, special files, empty files) —
/// from a chunked read buffer that only copies the rare record straddling a
/// chunk boundary.
#[derive(Debug)]
pub struct PcapChunkReader<R = File> {
    src: Source<R>,
    swapped: bool,
    resolution: TsResolution,
    link_type: u32,
    snaplen: u32,
    limit: u32,
    stats: IngestStats,
}

fn truncated(layer: &'static str, needed: usize, available: usize) -> PcapError {
    ParseError::Truncated { layer, needed, available }.into()
}

impl PcapChunkReader<File> {
    /// Opens a pcap file, preferring a whole-file mmap and falling back to
    /// chunked buffered reads when mapping fails (the fallback is counted in
    /// [`IngestStats::copy_fallbacks`]).
    ///
    /// # Errors
    ///
    /// Returns [`PcapError::Io`] if the file cannot be opened and
    /// [`PcapError::Format`] on a bad or truncated global header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PcapError> {
        let file = File::open(path)?;
        match Mmap::map(&file) {
            Ok(map) => Self::from_mmap(map),
            Err(_) => {
                let mut r = Self::from_reader(file)?;
                r.stats.copy_fallbacks += 1;
                Ok(r)
            }
        }
    }

    /// Opens a pcap file on the buffered chunk path, never attempting mmap
    /// (used by differential tests and as an explicit copy-path baseline).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PcapChunkReader::open`].
    pub fn open_buffered(path: impl AsRef<Path>) -> Result<Self, PcapError> {
        Self::from_reader(File::open(path)?)
    }

    fn from_mmap(map: Mmap) -> Result<Self, PcapError> {
        let len = map.as_slice().len();
        if len < 24 {
            return Err(truncated("pcap-global-header", 24, len));
        }
        let hdr: &[u8; 24] = map.as_slice()[..24].try_into().expect("24-byte slice");
        let g = parse_global_header(hdr)?;
        Ok(PcapChunkReader {
            src: Source::Mapped { map, pos: 24 },
            swapped: g.swapped,
            resolution: g.resolution,
            link_type: g.link_type,
            snaplen: g.snaplen,
            limit: caplen_limit(g.snaplen),
            stats: IngestStats {
                chunk_fills: 1,
                bytes_mapped: len as u64,
                ..IngestStats::default()
            },
        })
    }
}

impl<R: Read> PcapChunkReader<R> {
    /// Wraps any [`Read`] source on the chunked-buffer path with the
    /// [`DEFAULT_CHUNK_SIZE`].
    ///
    /// # Errors
    ///
    /// Returns [`PcapError::Format`] on a bad or truncated global header and
    /// [`PcapError::Io`] on a read failure.
    pub fn from_reader(inner: R) -> Result<Self, PcapError> {
        Self::with_chunk_size(inner, DEFAULT_CHUNK_SIZE)
    }

    /// Wraps any [`Read`] source, filling the parse buffer `chunk_size`
    /// bytes at a time (clamped to at least 1). Small chunk sizes force
    /// records to straddle refills and are exercised by the property suite.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PcapChunkReader::from_reader`].
    pub fn with_chunk_size(inner: R, chunk_size: usize) -> Result<Self, PcapError> {
        let mut r = PcapChunkReader {
            src: Source::Streamed {
                inner,
                buf: Vec::new(),
                start: 0,
                end: 0,
                chunk_size: chunk_size.max(1),
                eof: false,
            },
            swapped: false,
            resolution: TsResolution::Micro,
            link_type: 0,
            snaplen: 0,
            limit: caplen_limit(0),
            stats: IngestStats::default(),
        };
        let avail = r.fill(24)?;
        if avail < 24 {
            return Err(truncated("pcap-global-header", 24, avail));
        }
        let Source::Streamed { buf, start, .. } = &mut r.src else { unreachable!() };
        let hdr: [u8; 24] = buf[*start..*start + 24].try_into().expect("24-byte slice");
        *start += 24;
        let g = parse_global_header(&hdr)?;
        r.swapped = g.swapped;
        r.resolution = g.resolution;
        r.link_type = g.link_type;
        r.snaplen = g.snaplen;
        r.limit = caplen_limit(g.snaplen);
        Ok(r)
    }

    /// The file's timestamp resolution.
    #[must_use]
    pub fn resolution(&self) -> TsResolution {
        self.resolution
    }

    /// The file's link type (1 = Ethernet).
    #[must_use]
    pub fn link_type(&self) -> u32 {
        self.link_type
    }

    /// The file's declared snapshot length (0 if the writer left it unset).
    #[must_use]
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Whether records are served from a whole-file memory map (as opposed
    /// to the chunked read fallback).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        matches!(self.src, Source::Mapped { .. })
    }

    /// Ingest counters so far.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Yields the next record as a borrowed view, or `Ok(None)` at a clean
    /// end of file.
    ///
    /// # Errors
    ///
    /// Returns [`PcapError::Format`] on a truncated record header or body, a
    /// capture length above the file's limit, or a zero-length record, and
    /// [`PcapError::Io`] on a read failure of the fallback path.
    pub fn next_view(&mut self) -> Result<Option<PacketView<'_>>, PcapError> {
        match self.src {
            Source::Mapped { .. } => self.next_view_mapped(),
            Source::Streamed { .. } => self.next_view_streamed(),
        }
    }

    fn next_view_mapped(&mut self) -> Result<Option<PacketView<'_>>, PcapError> {
        let (swapped, resolution, limit) = (self.swapped, self.resolution, self.limit);
        let Source::Mapped { map, pos } = &mut self.src else { unreachable!() };
        let data = map.as_slice();
        if *pos == data.len() {
            return Ok(None);
        }
        let avail = data.len() - *pos;
        if avail < 16 {
            return Err(truncated("pcap-record-header", 16, avail));
        }
        let hdr: &[u8; 16] = data[*pos..*pos + 16].try_into().expect("16-byte slice");
        let rh = parse_record_header(hdr, swapped, resolution, limit)?;
        let caplen = rh.caplen as usize;
        let body = *pos + 16;
        if caplen > data.len() - body {
            return Err(truncated("pcap-record-body", caplen, data.len() - body));
        }
        *pos = body + caplen;
        self.stats.records += 1;
        Ok(Some(PacketView {
            ts_nanos: rh.ts_nanos,
            orig_len: rh.orig_len,
            data: &data[body..body + caplen],
        }))
    }

    fn next_view_streamed(&mut self) -> Result<Option<PacketView<'_>>, PcapError> {
        let avail = self.fill(16)?;
        if avail == 0 {
            return Ok(None);
        }
        if avail < 16 {
            return Err(truncated("pcap-record-header", 16, avail));
        }
        let (swapped, resolution, limit) = (self.swapped, self.resolution, self.limit);
        let hdr: [u8; 16] = {
            let Source::Streamed { buf, start, .. } = &self.src else { unreachable!() };
            buf[*start..*start + 16].try_into().expect("16-byte slice")
        };
        let rh = parse_record_header(&hdr, swapped, resolution, limit)?;
        let caplen = rh.caplen as usize;
        let need = 16 + caplen;
        let avail = self.fill(need)?;
        if avail < need {
            return Err(truncated("pcap-record-body", caplen, avail - 16));
        }
        self.stats.records += 1;
        let Source::Streamed { buf, start, .. } = &mut self.src else { unreachable!() };
        let body = *start + 16;
        *start = body + caplen;
        Ok(Some(PacketView {
            ts_nanos: rh.ts_nanos,
            orig_len: rh.orig_len,
            data: &buf[body..body + caplen],
        }))
    }

    /// Ensures at least `need` unread bytes are buffered (or EOF reached);
    /// returns the bytes available. Carries any partial record to the buffer
    /// front before refilling, so views never straddle a reallocation.
    fn fill(&mut self, need: usize) -> Result<usize, PcapError> {
        loop {
            let Source::Streamed { inner, buf, start, end, chunk_size, eof } = &mut self.src else {
                unreachable!()
            };
            let avail = *end - *start;
            if avail >= need || *eof {
                return Ok(avail);
            }
            if *start > 0 {
                // Carry the partial record to the front — the one copy the
                // fallback path cannot avoid.
                buf.copy_within(*start..*end, 0);
                if avail > 0 {
                    self.stats.copy_fallbacks += 1;
                }
                *start = 0;
                *end = avail;
            }
            let target = need.max(*chunk_size);
            if buf.len() < target {
                buf.resize(target, 0);
            }
            let cap = (buf.len() - *end).min(*chunk_size);
            match inner.read(&mut buf[*end..*end + cap]) {
                Ok(0) => *eof = true,
                Ok(n) => {
                    *end += n;
                    self.stats.chunk_fills += 1;
                    self.stats.bytes_mapped += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Parses a borrowed view into the caller's reusable [`PacketRecord`],
/// allocation-free: flow key and IP length from the frame bytes, wire
/// length from the record's original length (clamped to `u16` like the
/// owned-buffer path), timestamp rebased against `base_ts`.
///
/// # Errors
///
/// Returns the same [`ParseError`] [`crate::parse::parse_ethernet`] would
/// for the frame bytes; `out` is untouched on error.
pub fn parse_packet_view(
    view: &PacketView<'_>,
    base_ts: u64,
    out: &mut PacketRecord,
) -> Result<(), ParseError> {
    let parsed = crate::parse::parse_ethernet(view.data)?;
    out.key = parsed.key;
    out.wire_len = view.orig_len.min(u32::from(u16::MAX)) as u16;
    out.ts_nanos = view.ts_nanos.saturating_sub(base_ts);
    Ok(())
}

/// Streaming [`PacketRecord`] iterator over a [`PcapChunkReader`]: the
/// bridge between zero-copy ingest and any record consumer (notably
/// `run_multicore_stream`, whose recycled batch buffers make the combined
/// path allocation-free per packet).
///
/// Mirrors [`crate::pcap::read_records`] exactly: unparseable frames are
/// counted and skipped, timestamps are rebased so the first parsed packet
/// is t=0. Because `Iterator::next` cannot fail, a file-level error stops
/// the stream and is surfaced by [`RecordStream::finish`] (or
/// [`RecordStream::error`]).
#[derive(Debug)]
pub struct RecordStream<R = File> {
    reader: PcapChunkReader<R>,
    /// The reusable record every view is parsed into.
    scratch: PacketRecord,
    base_ts: Option<u64>,
    last_ts: u64,
    skipped: u64,
    error: Option<PcapError>,
}

impl<R: Read> RecordStream<R> {
    /// Wraps a chunk reader.
    #[must_use]
    pub fn new(reader: PcapChunkReader<R>) -> Self {
        let null_key = FlowKey::new([0; 4], [0; 4], 0, 0, Protocol::Other(0));
        RecordStream {
            reader,
            scratch: PacketRecord::new(null_key, 0, 0),
            base_ts: None,
            last_ts: 0,
            skipped: 0,
            error: None,
        }
    }

    /// Frames counted and skipped because they did not parse.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Rebased timestamp of the most recent record (the trace span so far).
    #[must_use]
    pub fn last_ts_nanos(&self) -> u64 {
        self.last_ts
    }

    /// Ingest counters of the underlying reader.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        self.reader.stats()
    }

    /// The file-level error that stopped the stream, if any.
    #[must_use]
    pub fn error(&self) -> Option<&PcapError> {
        self.error.as_ref()
    }

    /// Consumes the stream, returning `(skipped_frames, stats)` or the
    /// file-level error that cut the stream short.
    ///
    /// # Errors
    ///
    /// Returns the deferred [`PcapError`] if iteration stopped on one.
    pub fn finish(self) -> Result<(u64, IngestStats), PcapError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok((self.skipped, self.reader.stats())),
        }
    }
}

impl<R: Read> Iterator for RecordStream<R> {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        if self.error.is_some() {
            return None;
        }
        loop {
            match self.reader.next_view() {
                Ok(Some(view)) => {
                    // The rebase origin is the first frame that *parses*,
                    // matching read_records: commit it only on success.
                    let base = self.base_ts.unwrap_or(view.ts_nanos);
                    match parse_packet_view(&view, base, &mut self.scratch) {
                        Ok(()) => {
                            self.base_ts = Some(base);
                            self.last_ts = self.scratch.ts_nanos;
                            return Some(self.scratch);
                        }
                        Err(_) => self.skipped += 1,
                    }
                }
                Ok(None) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
    }
}

/// Reads a whole pcap file through the zero-copy path and, for each frame
/// that parses, yields a [`PacketRecord`] — the drop-in equivalent of
/// [`crate::pcap::read_records`], byte-identical output included.
///
/// # Errors
///
/// Returns an error only for file-level problems (open failure, bad magic,
/// truncated or corrupt record); per-packet parse failures are tolerated
/// and counted in the second tuple element.
pub fn read_records_mmap(path: impl AsRef<Path>) -> Result<(Vec<PacketRecord>, u64), PcapError> {
    let mut stream = RecordStream::new(PcapChunkReader::open(path)?);
    let records: Vec<PacketRecord> = stream.by_ref().collect();
    let (skipped, _) = stream.finish()?;
    Ok((records, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::{read_records, PcapWriter};
    use crate::synth::synthesize_frame;

    fn key(i: u8) -> FlowKey {
        FlowKey::new([i, 0, 0, 1], [i, 0, 0, 2], 1000 + u16::from(i), 80, Protocol::Tcp)
    }

    fn sample_file(n: u8) -> Vec<u8> {
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
        for i in 0..n {
            let rec = PacketRecord::new(key(i), 100 + u16::from(i), 10_000 + u64::from(i) * 500);
            w.write_packet(rec.ts_nanos, &synthesize_frame(&rec)).unwrap();
        }
        w.into_inner().unwrap();
        file
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("instameasure_chunk_{}_{name}", std::process::id()))
    }

    #[test]
    fn views_match_owned_reader_at_every_chunk_size() {
        let file = sample_file(9);
        let mut owned = crate::pcap::PcapReader::new(&file[..]).unwrap();
        let mut expected = Vec::new();
        while let Some(p) = owned.next_packet().unwrap() {
            expected.push(p);
        }
        for chunk_size in [1usize, 7, 64, DEFAULT_CHUNK_SIZE] {
            let mut r = PcapChunkReader::with_chunk_size(&file[..], chunk_size).unwrap();
            assert_eq!(r.resolution(), TsResolution::Nano);
            let mut got = Vec::new();
            while let Some(v) = r.next_view().unwrap() {
                got.push(crate::pcap::CapturedPacket {
                    ts_nanos: v.ts_nanos,
                    orig_len: v.orig_len,
                    data: v.data.to_vec(),
                });
            }
            assert_eq!(got, expected, "divergence at chunk_size={chunk_size}");
            assert_eq!(r.stats().records, expected.len() as u64);
        }
    }

    #[test]
    fn boundary_straddles_count_copy_fallbacks() {
        // A chunk bigger than one record (~117 B) but smaller than the file
        // guarantees some record straddles a refill and gets carried.
        let file = sample_file(4);
        assert!(file.len() > 400);
        let mut r = PcapChunkReader::with_chunk_size(&file[..], 200).unwrap();
        while r.next_view().unwrap().is_some() {}
        let stats = r.stats();
        assert!(stats.copy_fallbacks >= 1, "stats: {stats:?}");
        assert_eq!(stats.bytes_mapped, file.len() as u64);
        assert!(stats.chunk_fills >= (file.len() / 200) as u64);
    }

    #[test]
    fn mmap_open_reads_identically_to_owned_path() {
        let file = sample_file(6);
        let path = temp_path("mmap_parity.pcap");
        std::fs::write(&path, &file).unwrap();

        let (expected, expected_skipped) = read_records(&file[..]).unwrap();
        let (got, skipped) = read_records_mmap(&path).unwrap();
        assert_eq!(got, expected);
        assert_eq!(skipped, expected_skipped);

        let r = PcapChunkReader::open(&path).unwrap();
        if r.is_mapped() {
            // Whole file visible in one "fill", zero copies.
            assert_eq!(r.stats().chunk_fills, 1);
            assert_eq!(r.stats().bytes_mapped, file.len() as u64);
            assert_eq!(r.stats().copy_fallbacks, 0);
        } else {
            // Unsupported target: the fallback itself is the counted copy.
            assert_eq!(r.stats().copy_fallbacks, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_stream_matches_read_records_with_garbage_frames() {
        // Leading garbage frame: the rebase origin must be the first frame
        // that parses, exactly like read_records.
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
        w.write_packet(1_000, &[0u8; 30]).unwrap();
        let rec = PacketRecord::new(key(3), 120, 5_000);
        w.write_packet(2_000, &synthesize_frame(&rec)).unwrap();
        w.write_packet(2_500, &[0xFF; 20]).unwrap();
        let rec2 = PacketRecord::new(key(4), 130, 6_000);
        w.write_packet(3_000, &synthesize_frame(&rec2)).unwrap();
        w.into_inner().unwrap();

        let (expected, expected_skipped) = read_records(&file[..]).unwrap();
        let mut stream = RecordStream::new(PcapChunkReader::with_chunk_size(&file[..], 7).unwrap());
        let got: Vec<PacketRecord> = stream.by_ref().collect();
        assert_eq!(got, expected);
        assert_eq!(got[0].ts_nanos, 0, "rebased to first parsed packet");
        assert_eq!(stream.last_ts_nanos(), 1_000);
        let (skipped, stats) = stream.finish().unwrap();
        assert_eq!(skipped, expected_skipped);
        assert_eq!(stats.records, 4);
    }

    #[test]
    fn stream_error_is_deferred_to_finish() {
        let mut file = sample_file(2);
        file.extend_from_slice(&[0xAB; 5]); // stray partial record header
        let mut stream = RecordStream::new(PcapChunkReader::from_reader(&file[..]).unwrap());
        assert_eq!(stream.by_ref().count(), 2);
        assert!(stream.error().is_some());
        assert!(matches!(
            stream.finish(),
            Err(PcapError::Format(ParseError::Truncated { layer: "pcap-record-header", .. }))
        ));
    }

    #[test]
    fn empty_and_truncated_files_error_cleanly() {
        assert!(matches!(
            PcapChunkReader::from_reader(&[][..]),
            Err(PcapError::Format(ParseError::Truncated { layer: "pcap-global-header", .. }))
        ));
        let file = sample_file(1);
        assert!(matches!(
            PcapChunkReader::with_chunk_size(&file[..10], 3),
            Err(PcapError::Format(ParseError::Truncated { layer: "pcap-global-header", .. }))
        ));
        let path = temp_path("empty.pcap");
        std::fs::write(&path, []).unwrap();
        assert!(PcapChunkReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_packet_view_clamps_and_rebases() {
        let rec = PacketRecord::new(key(9), 64, 0);
        let frame = synthesize_frame(&rec);
        let view = PacketView { ts_nanos: 10_000, orig_len: 70_000, data: &frame };
        let mut out = PacketRecord::new(key(0), 0, 0);
        parse_packet_view(&view, 4_000, &mut out).unwrap();
        assert_eq!(out.key, key(9));
        assert_eq!(out.wire_len, u16::MAX);
        assert_eq!(out.ts_nanos, 6_000);
        // Base after the view timestamp saturates to zero, never underflows.
        parse_packet_view(&view, 20_000, &mut out).unwrap();
        assert_eq!(out.ts_nanos, 0);
    }
}
