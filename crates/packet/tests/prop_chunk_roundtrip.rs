//! Property tests for the zero-copy ingest path: writer → chunk reader →
//! parser reproduces the original records byte-for-byte, for arbitrary
//! traces, both timestamp resolutions, both endiannesses, and chunk sizes
//! from 1 byte to 1 MiB — always equal to what the owned-buffer
//! `read_records` path produces.

// Too slow under Miri; the chunk reader unit tests cover the same code there.
#![cfg(not(miri))]

use instameasure_packet::chunk::{PcapChunkReader, RecordStream};
use instameasure_packet::pcap::{
    read_records, PcapWriter, TsResolution, LINKTYPE_ETHERNET, MAGIC_MICRO, MAGIC_NANO,
};
use instameasure_packet::{synth, FlowKey, PacketRecord, Protocol};
use proptest::prelude::*;

const CHUNK_SIZES: [usize; 4] = [1, 7, 4096, 1 << 20];

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Tcp),
        Just(Protocol::Udp),
        Just(Protocol::Icmp),
        any::<u8>().prop_map(Protocol::from_number),
    ]
}

prop_compose! {
    fn arb_key()(
        src in any::<u32>(),
        dst in any::<u32>(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        proto in arb_protocol(),
    ) -> FlowKey {
        let ports = matches!(proto, Protocol::Tcp | Protocol::Udp);
        FlowKey::new(
            src.to_be_bytes(),
            dst.to_be_bytes(),
            if ports { sp } else { 0 },
            if ports { dp } else { 0 },
            proto,
        )
    }
}

/// Writes a little-endian capture of the given records.
fn write_capture(records: &[PacketRecord], resolution: TsResolution) -> Vec<u8> {
    let mut file = Vec::new();
    let mut w = PcapWriter::new(&mut file, resolution).unwrap();
    for r in records {
        w.write_packet(r.ts_nanos, &synth::synthesize_frame(r)).unwrap();
    }
    w.into_inner().unwrap();
    file
}

/// Hand-writes the same capture big-endian (our writer is LE-only).
fn write_capture_be(records: &[PacketRecord], resolution: TsResolution) -> Vec<u8> {
    let magic = match resolution {
        TsResolution::Micro => MAGIC_MICRO,
        TsResolution::Nano => MAGIC_NANO,
    };
    let mut file = Vec::new();
    file.extend_from_slice(&magic.to_be_bytes());
    file.extend_from_slice(&2u16.to_be_bytes());
    file.extend_from_slice(&4u16.to_be_bytes());
    file.extend_from_slice(&[0; 8]); // thiszone + sigfigs
    file.extend_from_slice(&(256u32 * 1024).to_be_bytes()); // snaplen
    file.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
    for r in records {
        let frame = synth::synthesize_frame(r);
        let (sec, frac) = match resolution {
            TsResolution::Micro => {
                (r.ts_nanos / 1_000_000_000, (r.ts_nanos % 1_000_000_000) / 1_000)
            }
            TsResolution::Nano => (r.ts_nanos / 1_000_000_000, r.ts_nanos % 1_000_000_000),
        };
        file.extend_from_slice(&(sec as u32).to_be_bytes());
        file.extend_from_slice(&(frac as u32).to_be_bytes());
        file.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        file.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        file.extend_from_slice(&frame);
    }
    file
}

/// Drains a capture through `RecordStream` at the given chunk size.
fn stream_records(file: &[u8], chunk_size: usize) -> (Vec<PacketRecord>, u64) {
    let mut stream = RecordStream::new(PcapChunkReader::with_chunk_size(file, chunk_size).unwrap());
    let records: Vec<PacketRecord> = stream.by_ref().collect();
    let (skipped, _) = stream.finish().unwrap();
    (records, skipped)
}

fn sorted_records(recs: Vec<(FlowKey, u16, u64)>) -> Vec<PacketRecord> {
    let mut times: Vec<u64> = recs.iter().map(|r| r.2).collect();
    times.sort_unstable();
    recs.iter().zip(&times).map(|((k, l, _), &t)| PacketRecord::new(*k, *l, t)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chunked_reader_reproduces_records_at_every_chunk_size(
        recs in prop::collection::vec((arb_key(), 60u16..=1514, 0u64..=10_000_000_000u64), 1..40),
        nano in any::<bool>(),
    ) {
        let resolution = if nano { TsResolution::Nano } else { TsResolution::Micro };
        let records = sorted_records(recs);
        let file = write_capture(&records, resolution);
        let (expected, expected_skipped) = read_records(&file[..]).unwrap();
        for chunk_size in CHUNK_SIZES {
            let (got, skipped) = stream_records(&file, chunk_size);
            prop_assert_eq!(&got, &expected, "chunk_size={}", chunk_size);
            prop_assert_eq!(skipped, expected_skipped);
        }
        // And the original records survive the trip (modulo padding/rebase).
        let base = records[0].ts_nanos;
        let first = stream_records(&file, 4096).0;
        for (g, r) in first.iter().zip(&records) {
            prop_assert_eq!(g.key, r.key);
            let rebased = match resolution {
                TsResolution::Nano => r.ts_nanos - base,
                // Micro resolution truncates sub-microsecond detail.
                TsResolution::Micro => r.ts_nanos / 1_000 * 1_000 - base / 1_000 * 1_000,
            };
            prop_assert_eq!(g.ts_nanos, rebased);
            let expected_len = usize::from(r.wire_len).max(synth::MIN_FRAME_LEN);
            prop_assert_eq!(usize::from(g.wire_len), expected_len);
        }
    }

    #[test]
    fn big_endian_captures_decode_identically(
        recs in prop::collection::vec((arb_key(), 60u16..=1514, 0u64..=4_000_000_000u64), 1..20),
        nano in any::<bool>(),
    ) {
        let resolution = if nano { TsResolution::Nano } else { TsResolution::Micro };
        let records = sorted_records(recs);
        let le = write_capture(&records, resolution);
        let be = write_capture_be(&records, resolution);
        let (expected, _) = read_records(&le[..]).unwrap();
        let (owned_be, _) = read_records(&be[..]).unwrap();
        prop_assert_eq!(&owned_be, &expected, "owned BE decode");
        for chunk_size in CHUNK_SIZES {
            let (got, skipped) = stream_records(&be, chunk_size);
            prop_assert_eq!(&got, &expected, "BE chunk_size={}", chunk_size);
            prop_assert_eq!(skipped, 0u64);
        }
    }

    #[test]
    fn truncated_captures_never_diverge(
        recs in prop::collection::vec((arb_key(), 60u16..=200, 0u64..=1_000_000u64), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let records = sorted_records(recs);
        let file = write_capture(&records, TsResolution::Nano);
        let cut = ((file.len() as f64) * cut_frac) as usize;
        instameasure_packet::fuzzing::fuzz_pcap_stream(&file[..cut]);
    }
}
