//! Proves the zero-copy claim: after warm-up, streaming records out of a
//! capture performs **zero** heap allocations per packet.
//!
//! A counting global allocator wraps the system allocator; the single test
//! in this file (one test so parallel test threads cannot pollute the
//! counters) drains a few records to let the reader size its buffers, then
//! asserts the allocation count stays flat over the remaining thousands of
//! records.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use instameasure_packet::chunk::{PcapChunkReader, RecordStream};
use instameasure_packet::pcap::{PcapWriter, TsResolution};
use instameasure_packet::synth::synthesize_frame;
use instameasure_packet::{FlowKey, PacketRecord, Protocol};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn build_capture(packets: u16) -> Vec<u8> {
    let mut file = Vec::new();
    let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
    for i in 0..packets {
        let key = FlowKey::new(
            [10, (i >> 8) as u8, i as u8, 1],
            [10, 0, 0, 2],
            1024 + i,
            443,
            Protocol::Tcp,
        );
        let rec = PacketRecord::new(key, 400, u64::from(i) * 1_000);
        w.write_packet(rec.ts_nanos, &synthesize_frame(&rec)).unwrap();
    }
    w.into_inner().unwrap();
    file
}

#[test]
fn steady_state_streaming_does_not_allocate() {
    // Miri runs the same invariant on a smaller drain.
    const TOTAL: u16 = if cfg!(miri) { 200 } else { 4_000 };
    const WARMUP: usize = 16;
    let file = build_capture(TOTAL);

    // Buffered chunk path (mmap of an in-memory slice is not a thing; the
    // mapped path trivially allocates nothing after open, covered below).
    let mut stream = RecordStream::new(PcapChunkReader::from_reader(&file[..]).unwrap());
    let mut count = 0u64;
    let mut checksum = 0u64;
    for rec in stream.by_ref().take(WARMUP) {
        count += 1;
        checksum ^= u64::from(rec.key.src_port);
    }
    let baseline = ALLOCS.load(Ordering::Relaxed);
    for rec in stream.by_ref() {
        count += 1;
        checksum ^= u64::from(rec.key.src_port);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(count, u64::from(TOTAL));
    assert_ne!(checksum, u64::MAX); // keep the loop from optimising away
    assert_eq!(
        after - baseline,
        0,
        "streamed {} records after warm-up with {} allocations",
        u64::from(TOTAL) - WARMUP as u64,
        after - baseline
    );
    stream.finish().unwrap();

    // Mapped path: after open, draining the whole file must not allocate
    // at all (views borrow straight from the mapping).
    let path =
        std::env::temp_dir().join(format!("instameasure_zero_alloc_{}.pcap", std::process::id()));
    std::fs::write(&path, &file).unwrap();
    let reader = PcapChunkReader::open(&path).unwrap();
    if reader.is_mapped() {
        let mut stream = RecordStream::new(reader);
        let mut count = 0u64;
        // One record first: RecordStream state (base_ts) settles lazily.
        count += u64::from(stream.next().is_some());
        let baseline = ALLOCS.load(Ordering::Relaxed);
        for _rec in stream.by_ref() {
            count += 1;
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(count, u64::from(TOTAL));
        assert_eq!(after - baseline, 0, "mapped drain allocated {} times", after - baseline);
        stream.finish().unwrap();
    }
    std::fs::remove_file(&path).ok();
}
