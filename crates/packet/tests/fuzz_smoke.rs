//! Bounded fuzz smoke run over the shared fuzz bodies.
//!
//! CI cannot assume nightly + cargo-fuzz, so this test replays the seeded
//! corpus and a bounded number of deterministic xorshift mutations through
//! the exact same invariant bodies the libfuzzer targets use
//! (`instameasure_packet::fuzzing`). Tune the budget with
//! `INSTAMEASURE_FUZZ_ITERS` (mutations per seed, default 2000); set
//! `INSTAMEASURE_WRITE_CORPUS=<dir>` to dump the seeds as starting corpus
//! files for real fuzzing sessions.

// Too slow under Miri; the chunk/parse unit tests cover the same code there.
#![cfg(not(miri))]

use instameasure_packet::fuzzing::{
    fuzz_headers, fuzz_parse_packet_view, fuzz_pcap_stream, fuzz_simd_kernels,
};
use instameasure_packet::pcap::{PcapWriter, TsResolution, LINKTYPE_ETHERNET, MAGIC_MICRO};
use instameasure_packet::synth::synthesize_frame;
use instameasure_packet::{FlowKey, PacketRecord, Protocol};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Applies one random byte-level mutation (flip, splice, truncate, extend).
fn mutate(buf: &mut Vec<u8>, rng: &mut XorShift) {
    match rng.next() % 4 {
        0 if !buf.is_empty() => {
            let i = (rng.next() as usize) % buf.len();
            buf[i] ^= (rng.next() & 0xFF) as u8;
        }
        1 if !buf.is_empty() => {
            let cut = (rng.next() as usize) % buf.len();
            buf.truncate(cut);
        }
        2 => buf.extend_from_slice(&rng.next().to_le_bytes()),
        _ if buf.len() >= 4 => {
            let i = (rng.next() as usize) % (buf.len() - 3);
            let word = rng.next().to_le_bytes();
            buf[i..i + 4].copy_from_slice(&word[..4]);
        }
        _ => buf.push((rng.next() & 0xFF) as u8),
    }
}

fn sample_frames() -> Vec<Vec<u8>> {
    let tcp = FlowKey::new([10, 0, 0, 1], [10, 0, 0, 2], 40000, 443, Protocol::Tcp);
    let udp = FlowKey::new([172, 16, 5, 5], [8, 8, 8, 8], 5353, 53, Protocol::Udp);
    let icmp = FlowKey::new([192, 168, 1, 1], [192, 168, 1, 2], 0, 0, Protocol::Icmp);
    let mut frames: Vec<Vec<u8>> =
        [tcp, udp, icmp].iter().map(|k| synthesize_frame(&PacketRecord::new(*k, 300, 0))).collect();
    // One VLAN-tagged variant and one IPv6/UDP frame.
    let mut tagged = frames[0][..12].to_vec();
    tagged.extend_from_slice(&[0x81, 0x00, 0x00, 0x64]);
    tagged.extend_from_slice(&frames[0][12..]);
    frames.push(tagged);
    let mut v6 = vec![0u8; 14];
    v6[12] = 0x86;
    v6[13] = 0xDD;
    let mut p = vec![0u8; 48];
    p[0] = 0x60;
    p[4..6].copy_from_slice(&8u16.to_be_bytes());
    p[6] = 17;
    p[23] = 1;
    p[39] = 2;
    p[40..42].copy_from_slice(&7u16.to_be_bytes());
    p[42..44].copy_from_slice(&9u16.to_be_bytes());
    v6.extend_from_slice(&p);
    frames.push(v6);
    frames
}

fn sample_captures() -> Vec<Vec<u8>> {
    let frames = sample_frames();
    let mut captures = Vec::new();
    for resolution in [TsResolution::Micro, TsResolution::Nano] {
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, resolution).unwrap();
        for (i, f) in frames.iter().enumerate() {
            w.write_packet(i as u64 * 1_000_000, f).unwrap();
        }
        w.into_inner().unwrap();
        captures.push(file);
    }
    // Hand-built big-endian capture.
    let mut be = Vec::new();
    be.extend_from_slice(&MAGIC_MICRO.to_be_bytes());
    be.extend_from_slice(&2u16.to_be_bytes());
    be.extend_from_slice(&4u16.to_be_bytes());
    be.extend_from_slice(&[0; 8]);
    be.extend_from_slice(&65535u32.to_be_bytes());
    be.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
    be.extend_from_slice(&3u32.to_be_bytes());
    be.extend_from_slice(&5u32.to_be_bytes());
    be.extend_from_slice(&(frames[0].len() as u32).to_be_bytes());
    be.extend_from_slice(&(frames[0].len() as u32).to_be_bytes());
    be.extend_from_slice(&frames[0]);
    captures.push(be);
    // Corrupt shapes: zeroed tail, oversized caplen, header cut mid-way.
    let mut zeroed = captures[0].clone();
    zeroed.extend_from_slice(&[0u8; 16]);
    captures.push(zeroed);
    let mut oversized = captures[0].clone();
    oversized.extend_from_slice(&[0u8; 8]);
    oversized.extend_from_slice(&u32::MAX.to_le_bytes());
    oversized.extend_from_slice(&100u32.to_le_bytes());
    captures.push(oversized);
    let mut cut = captures[1].clone();
    cut.truncate(24 + 7);
    captures.push(cut);
    captures
}

fn iters() -> u64 {
    std::env::var("INSTAMEASURE_FUZZ_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000)
}

#[test]
fn smoke_headers_and_views() {
    let seeds = sample_frames();
    if let Ok(dir) = std::env::var("INSTAMEASURE_WRITE_CORPUS") {
        for (i, s) in seeds.iter().enumerate() {
            for target in ["parse_headers", "parse_packet_view"] {
                let d = std::path::Path::new(&dir).join(target);
                std::fs::create_dir_all(&d).unwrap();
                std::fs::write(d.join(format!("seed-frame-{i}")), s).unwrap();
            }
        }
    }
    let mut rng = XorShift(0x5eed_0001);
    for seed in &seeds {
        fuzz_headers(seed);
        fuzz_parse_packet_view(seed);
        let mut buf = seed.clone();
        for _ in 0..iters() {
            mutate(&mut buf, &mut rng);
            if buf.len() > 4096 {
                buf.truncate(4096);
            }
            fuzz_headers(&buf);
            fuzz_parse_packet_view(&buf);
        }
    }
}

#[test]
fn smoke_simd_kernel_differential() {
    let seeds = sample_frames();
    if let Ok(dir) = std::env::var("INSTAMEASURE_WRITE_CORPUS") {
        let d = std::path::Path::new(&dir).join("simd_kernels");
        std::fs::create_dir_all(&d).unwrap();
        for (i, s) in seeds.iter().enumerate() {
            std::fs::write(d.join(format!("seed-frame-{i}")), s).unwrap();
        }
    }
    let mut rng = XorShift(0x5eed_0003);
    // The kernel body replays ~10 prefix lengths per input; split the
    // budget accordingly.
    let per_seed = (iters() / 8).max(64);
    for seed in &seeds {
        fuzz_simd_kernels(seed);
        let mut buf = seed.clone();
        for _ in 0..per_seed {
            mutate(&mut buf, &mut rng);
            if buf.len() > 4096 {
                buf.truncate(4096);
            }
            fuzz_simd_kernels(&buf);
        }
    }
}

#[test]
fn smoke_pcap_stream_differential() {
    let seeds = sample_captures();
    if let Ok(dir) = std::env::var("INSTAMEASURE_WRITE_CORPUS") {
        let d = std::path::Path::new(&dir).join("pcap_stream");
        std::fs::create_dir_all(&d).unwrap();
        for (i, s) in seeds.iter().enumerate() {
            std::fs::write(d.join(format!("seed-capture-{i}")), s).unwrap();
        }
    }
    let mut rng = XorShift(0x5eed_0002);
    // The stream body runs 5 readers per input; split the budget so the
    // wall-clock stays comparable to the header smoke.
    let per_seed = (iters() / 4).max(64);
    for seed in &seeds {
        fuzz_pcap_stream(seed);
        for cut in 0..seed.len().min(64) {
            fuzz_pcap_stream(&seed[..seed.len() - cut]);
        }
        let mut buf = seed.clone();
        for _ in 0..per_seed {
            mutate(&mut buf, &mut rng);
            if buf.len() > 8192 {
                buf.truncate(8192);
            }
            fuzz_pcap_stream(&buf);
        }
    }
}
