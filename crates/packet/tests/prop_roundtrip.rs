//! Property tests: synthesis → parse and pcap write → read are lossless for
//! the fields the measurement pipeline relies on.

// Too slow under Miri; unit tests cover the same parsers there.
#![cfg(not(miri))]

use instameasure_packet::pcap::{read_records, PcapWriter, TsResolution};
use instameasure_packet::{parse, synth, FlowKey, PacketRecord, Protocol};
use proptest::prelude::*;

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Tcp),
        Just(Protocol::Udp),
        Just(Protocol::Icmp),
        any::<u8>().prop_map(Protocol::from_number),
    ]
}

prop_compose! {
    fn arb_key()(
        src in any::<u32>(),
        dst in any::<u32>(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        proto in arb_protocol(),
    ) -> FlowKey {
        let ports = matches!(proto, Protocol::Tcp | Protocol::Udp);
        FlowKey::new(
            src.to_be_bytes(),
            dst.to_be_bytes(),
            if ports { sp } else { 0 },
            if ports { dp } else { 0 },
            proto,
        )
    }
}

proptest! {
    #[test]
    fn key_bytes_roundtrip(key in arb_key()) {
        prop_assert_eq!(FlowKey::from_bytes(key.to_bytes()), key);
    }

    #[test]
    fn synth_then_parse_recovers_key(key in arb_key(), len in 0u16..=9000) {
        let frame = synth::synthesize_frame(&PacketRecord::new(key, len, 0));
        let parsed = parse::parse_ethernet(&frame).unwrap();
        prop_assert_eq!(parsed.key, key);
        // IP checksum of a valid header (including its checksum field) is 0.
        let ip = &frame[parse::ETHERNET_HEADER_LEN..parse::ETHERNET_HEADER_LEN + 20];
        prop_assert_eq!(parse::internet_checksum(ip), 0);
    }

    #[test]
    fn pcap_roundtrip_preserves_records(
        recs in prop::collection::vec(
            (arb_key(), 60u16..=1514, 0u64..=10_000_000_000u64),
            1..50,
        )
    ) {
        // Timestamps must be non-decreasing in a capture; sort them.
        let mut times: Vec<u64> = recs.iter().map(|r| r.2).collect();
        times.sort_unstable();
        let records: Vec<PacketRecord> = recs
            .iter()
            .zip(&times)
            .map(|((k, l, _), &t)| PacketRecord::new(*k, *l, t))
            .collect();

        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
        for r in &records {
            w.write_packet(r.ts_nanos, &synth::synthesize_frame(r)).unwrap();
        }
        w.into_inner().unwrap();

        let (got, skipped) = read_records(&file[..]).unwrap();
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(got.len(), records.len());
        let base = records[0].ts_nanos;
        for (g, r) in got.iter().zip(&records) {
            prop_assert_eq!(g.key, r.key);
            prop_assert_eq!(g.ts_nanos, r.ts_nanos - base);
            // Length survives unless the frame was padded up to the minimum.
            let expected = usize::from(r.wire_len).max(synth::MIN_FRAME_LEN);
            prop_assert_eq!(usize::from(g.wire_len), expected);
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse::parse_ethernet(&data);
        let _ = parse::parse_ipv4(&data);
    }
}

mod ipv6_props {
    use instameasure_packet::ipv6::{map_v6_addr, parse_ipv6};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ipv6_parser_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = parse_ipv6(&data);
        }

        #[test]
        fn v6_mapping_is_deterministic_and_spreads(addr in any::<[u8; 16]>()) {
            prop_assert_eq!(map_v6_addr(&addr), map_v6_addr(&addr));
            // Flipping any byte changes the pseudo-address (w.h.p.).
            let mut other = addr;
            other[0] ^= 1;
            prop_assert_ne!(map_v6_addr(&addr), map_v6_addr(&other));
        }

        #[test]
        fn valid_v6_udp_always_parses(
            src in any::<[u8; 16]>(),
            dst in any::<[u8; 16]>(),
            sport in any::<u16>(),
            dport in any::<u16>(),
        ) {
            let mut p = vec![0u8; 48];
            p[0] = 0x60;
            p[4..6].copy_from_slice(&8u16.to_be_bytes());
            p[6] = 17;
            p[8..24].copy_from_slice(&src);
            p[24..40].copy_from_slice(&dst);
            p[40..42].copy_from_slice(&sport.to_be_bytes());
            p[42..44].copy_from_slice(&dport.to_be_bytes());
            let parsed = parse_ipv6(&p).unwrap();
            prop_assert_eq!(parsed.key.src_port, sport);
            prop_assert_eq!(parsed.key.dst_port, dport);
            prop_assert_eq!(parsed.key.src_ip, map_v6_addr(&src));
        }
    }
}
