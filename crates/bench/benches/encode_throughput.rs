//! Criterion micro-bench: per-packet encode cost of the regulators —
//! the substrate of paper Fig. 9(a)'s Mpps numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use instameasure_sketch::{FlowFilter, FlowRegulator, SingleLayerRcc, SketchConfig};
use instameasure_traffic::presets::caida_like;

fn encode_throughput(c: &mut Criterion) {
    let trace = caida_like(0.01, 7);
    let records = &trace.records;
    let cfg = SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).build().unwrap();

    let mut group = c.benchmark_group("encode_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));

    group.bench_function(BenchmarkId::new("flow_regulator", records.len()), |b| {
        b.iter(|| {
            let mut fr = FlowRegulator::new(cfg);
            let mut updates = 0u64;
            for r in records {
                if fr.process(r).is_some() {
                    updates += 1;
                }
            }
            updates
        });
    });

    group.bench_function(BenchmarkId::new("single_layer_rcc", records.len()), |b| {
        b.iter(|| {
            let mut rcc = SingleLayerRcc::new(cfg);
            let mut updates = 0u64;
            for r in records {
                if rcc.process(r).is_some() {
                    updates += 1;
                }
            }
            updates
        });
    });

    group.finish();
}

criterion_group!(benches, encode_throughput);
criterion_main!(benches);
