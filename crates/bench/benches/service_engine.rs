//! Service-path throughput: the live thread-per-shard engine (SPSC
//! rings + snapshot queries) against the offline batched hot path on
//! the same cache-hostile workload. The lock-free refactor exists so
//! that going *live* costs almost nothing: the engine adds a ring hop
//! and a worker thread per shard, and this bench holds it to within
//! ~10% of the offline batched replay.
//!
//! Besides the criterion group, a manual timing pass writes
//! `BENCH_service.json` at the repo root (override the path with
//! `INSTAMEASURE_BENCH_JSON`) recording packets/sec for the offline
//! baseline and every engine configuration swept, plus each ratio. If
//! the best service configuration falls below the floor the run prints
//! a `SERVICE-REGRESSION` marker, which the CI bench-smoke job greps
//! for.
//!
//! `INSTAMEASURE_BENCH_SMOKE=1` shrinks the trace and sample counts to
//! a few seconds of wall time — a compile-and-sanity gate with a lenient
//! floor (CI shares cores; the full run enforces the real target).

use std::sync::Arc;
use std::time::Instant;

use criterion::{Criterion, Throughput};
use instameasure_core::InstaMeasureConfig;
use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use instameasure_service::engine::{Engine, EngineConfig};
use instameasure_sketch::SketchConfig;
use instameasure_telemetry::SharedRegistry;
use instameasure_wsaf::WsafConfig;
use rand::{Rng, SeedableRng};

/// Engine shapes swept: `(workers, batch_size, queue_batches)`. Batch
/// and queue sizes amortize ring hops and context switches; more shards
/// only help with real spare cores, so the sweep stays small.
const CONFIGS: [(usize, usize, usize); 3] = [(1, 1024, 256), (1, 4096, 64), (2, 2048, 64)];

/// Offline reference batch size (the hot-path bench's sweet spot).
const OFFLINE_BATCH: usize = 1024;

/// Throughput floor (service pps / offline pps) below which the
/// regression marker fires.
///
/// The ~0.9 target assumes the pusher and the shard workers get their
/// own hardware threads so the ring actually pipelines. On a single-CPU
/// host the two sides *serialize* — every packet is paid for twice
/// (dispatch copy + processing) plus a context switch per queue-full —
/// so the achievable ceiling is roughly half; the floor halves with it
/// rather than crying wolf. Smoke mode is additionally lenient: one bad
/// timeslice on a shared CI core dominates its short run.
fn floor(smoke: bool) -> f64 {
    let base = if smoke { 0.40 } else { 0.90 };
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cpus == 1 {
        base * 0.5
    } else {
        base
    }
}

struct Workload {
    records: Vec<PacketRecord>,
    flows: usize,
}

/// Same cache-hostile shape as the hot-path bench: uniform random flows
/// over a large universe, so the comparison isolates the service fabric
/// rather than cache luck.
fn workload(packets: usize, flows: usize, seed: u64) -> Workload {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let records = (0..packets as u64)
        .map(|t| {
            let i = rng.gen_range(0..flows as u32);
            let key = FlowKey::new(
                i.to_be_bytes(),
                (i ^ 0xA5A5_A5A5).to_be_bytes(),
                (i % 60_000) as u16,
                443,
                Protocol::Udp,
            );
            PacketRecord::new(key, 64 + (t % 1400) as u16, t)
        })
        .collect();
    Workload { records, flows }
}

fn config() -> InstaMeasureConfig {
    InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder().memory_bytes(8 * 1024 * 1024).vector_bits(8).build().unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(18).build().unwrap())
}

/// Offline baseline: the batched single-core hot path. Construction is
/// outside the timed region on both sides — the comparison is ingest
/// throughput, not arena zeroing.
fn offline_pps(records: &[PacketRecord], reps: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut im = instameasure_core::InstaMeasure::new(config());
        let start = Instant::now();
        for chunk in records.chunks(OFFLINE_BATCH) {
            im.process_batch(chunk);
        }
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(im.wsaf().len());
        best = best.max(records.len() as f64 / secs);
    }
    best
}

/// One full service pass: push the whole trace down a lane, then drain.
/// The engine (worker threads, rings, arenas) is constructed outside the
/// timed region; the drain — which processes every ring remainder and
/// publishes the final snapshot — is inside it, so the number is honest
/// end-of-stream throughput. Packet-exact accounting is asserted every
/// rep: a bench that loses packets is measuring a bug.
fn service_pps(records: &[PacketRecord], reps: usize, shape: (usize, usize, usize)) -> f64 {
    let (workers, batch, queue) = shape;
    let mut best = 0.0f64;
    for _ in 0..reps {
        let cfg = EngineConfig {
            workers,
            batch_size: batch,
            queue_batches: queue,
            pin: false,
            per_worker: config(),
        };
        let engine = Engine::start(&cfg, Arc::new(SharedRegistry::new()));
        let start = Instant::now();
        let mut lane = engine.lane().expect("engine is open");
        lane.submit(records).expect("engine is open");
        drop(lane);
        let report = engine.drain();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(report.processed, records.len() as u64, "engine dropped packets");
        best = best.max(records.len() as f64 / secs);
    }
    best
}

fn measure_and_report(w: &Workload, reps: usize, smoke: bool) {
    let offline_pps = offline_pps(&w.records, reps);
    let mut rows = Vec::new();
    let mut best_ratio = 0.0f64;
    let mut best_cfg = CONFIGS[0];
    for &(workers, batch, queue) in &CONFIGS {
        let pps = service_pps(&w.records, reps, (workers, batch, queue));
        let ratio = pps / offline_pps;
        if ratio > best_ratio {
            best_ratio = ratio;
            best_cfg = (workers, batch, queue);
        }
        println!(
            "service_engine: {workers}w/b{batch}/q{queue}: {:.2} Mpps vs offline {:.2} Mpps \
             ({ratio:.2}x)",
            pps / 1e6,
            offline_pps / 1e6
        );
        rows.push(format!(
            "    {{\"workers\": {workers}, \"batch_size\": {batch}, \"queue_batches\": {queue}, \
             \"pps\": {pps:.0}, \"ratio_vs_offline\": {ratio:.4}}}"
        ));
    }

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"service_engine\",\n  \"smoke\": {smoke},\n  \"cpus\": {cpus},\n  \
         \"packets\": {},\n  \
         \"flows\": {},\n  \"offline_batch_size\": {OFFLINE_BATCH},\n  \
         \"offline_pps\": {offline_pps:.0},\n  \"service\": [\n{}\n  ],\n  \
         \"best_config\": {{\"workers\": {}, \"batch_size\": {}, \"queue_batches\": {}}},\n  \
         \"best_ratio\": {best_ratio:.4},\n  \"floor\": {:.2}\n}}\n",
        w.records.len(),
        w.flows,
        rows.join(",\n"),
        best_cfg.0,
        best_cfg.1,
        best_cfg.2,
        floor(smoke)
    );
    let path = std::env::var("INSTAMEASURE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_service.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_service.json");
    println!(
        "service_engine: best ratio {best_ratio:.2}x (workers {}, batch {}, queue {}); wrote {path}",
        best_cfg.0, best_cfg.1, best_cfg.2
    );
    if best_ratio < floor(smoke) {
        println!(
            "SERVICE-REGRESSION: service path at {best_ratio:.2}x of offline hot path \
             (floor {:.2}x)",
            floor(smoke)
        );
    }
}

fn criterion_groups(c: &mut Criterion, w: &Workload) {
    let mut group = c.benchmark_group("service_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(w.records.len() as u64));
    group.bench_function("offline_batched", |b| b.iter(|| offline_pps(&w.records, 1)));
    for &(workers, batch, queue) in &CONFIGS {
        group.bench_function(format!("service/{workers}w_b{batch}_q{queue}"), |b| {
            b.iter(|| service_pps(&w.records, 1, (workers, batch, queue)));
        });
    }
    group.finish();
}

fn main() {
    let smoke = std::env::var("INSTAMEASURE_BENCH_SMOKE").is_ok();
    let (packets, flows, reps) =
        if smoke { (400_000, 100_000, 2) } else { (4_000_000, 400_000, 3) };
    let w = workload(packets, flows, 42);

    measure_and_report(&w, reps, smoke);

    if !smoke {
        let mut c = Criterion::default();
        criterion_groups(&mut c, &w);
    }
}
