//! Criterion micro-bench: the full single-core InstaMeasure pipeline
//! (FlowRegulator + WSAF) vs the baselines on the same trace slice.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use instameasure_baselines::{CsmConfig, CsmSketch, PerFlowCounter, SampledNetflow};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_sketch::SketchConfig;
use instameasure_traffic::presets::caida_like;
use instameasure_wsaf::WsafConfig;

fn pipeline(c: &mut Criterion) {
    let trace = caida_like(0.01, 11);
    let records = &trace.records;

    let mut group = c.benchmark_group("full_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));

    group.bench_function("instameasure", |b| {
        let cfg = InstaMeasureConfig::default()
            .with_sketch(
                SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).build().unwrap(),
            )
            .with_wsaf(WsafConfig::builder().entries_log2(16).build().unwrap());
        b.iter(|| {
            let mut im = InstaMeasure::new(cfg);
            for r in records {
                im.process(r);
            }
            im.wsaf().len()
        });
    });

    group.bench_function("csm_encode", |b| {
        b.iter(|| {
            let mut csm =
                CsmSketch::new(CsmConfig { num_counters: 1 << 18, vector_len: 100, seed: 3 });
            for r in records {
                csm.record(r);
            }
            csm.total_packets()
        });
    });

    group.bench_function("sampled_netflow_1in100", |b| {
        b.iter(|| {
            let mut nf = SampledNetflow::new(100);
            for r in records {
                nf.record(r);
            }
            nf.num_entries()
        });
    });

    group.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
