//! Detection-latency bench: the paper's "instant" claim as a number.
//!
//! InstaMeasure's pitch is per-flow state fresh enough that anomaly
//! verdicts land within ~10 ms of the triggering epoch closing. This
//! bench runs the real daemon over loopback TCP, makes an attack
//! resident, and times the full client-observed path per epoch: rotate
//! request → per-shard snapshot capture → feature merge → detector
//! suite → alert frame back on the subscriber's socket.
//!
//! A manual timing pass writes `BENCH_detect.json` at the repo root
//! (override with `INSTAMEASURE_BENCH_JSON`) with p50/p99/max
//! onset→alert latency. If p99 exceeds the budget the run prints a
//! `DETECT-REGRESSION` marker, which the CI bench-smoke job greps for.
//!
//! `INSTAMEASURE_BENCH_SMOKE=1` shrinks the epoch count and relaxes the
//! budget — CI shares cores; the full run enforces the paper's number.

use std::time::{Duration, Instant};

use instameasure_core::detect::{AnomalyKind, DetectorConfig};
use instameasure_core::InstaMeasureConfig;
use instameasure_service::server::{Server, ServiceConfig};
use instameasure_service::{DetectionConfig, ServiceClient};
use instameasure_traffic::adversarial::horizontal_scan;

/// Alert-latency budget in milliseconds: the paper's detection target
/// for the full run, a shared-core allowance for smoke.
fn budget_ms(smoke: bool) -> f64 {
    if smoke {
        25.0
    } else {
        10.0
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::var("INSTAMEASURE_BENCH_SMOKE").is_ok();
    let epochs = if smoke { 20 } else { 200 };

    let cfg = ServiceConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .batch_size(512)
        .read_timeout(Duration::from_secs(5))
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .detect(DetectionConfig { interval: None, detectors: DetectorConfig::default() })
        .build()
        .expect("static bench config is valid");
    let server = Server::start(cfg).expect("loopback bind");
    let mut tap = ServiceClient::connect(server.local_addr()).expect("tap connect");
    // Short read timeout: the per-epoch straggler drain costs one
    // timeout tick, not the default 10 s.
    let mut sub =
        ServiceClient::connect_with_timeout(server.local_addr(), Duration::from_millis(100))
            .expect("subscriber connect");
    sub.subscribe(0).expect("detection is enabled");

    let (records, _) = horizontal_scan(200, 300, 0);
    let mut samples_ms = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        // Make the attack resident, outside the timed region: the
        // measured path is epoch close → alert on the wire, not ingest.
        tap.push_records(&records).expect("push over loopback");
        loop {
            let s = sub.status().expect("status");
            if s.packets_processed == s.packets_submitted {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        let t0 = Instant::now();
        sub.rotate().expect("rotate closes the epoch");
        loop {
            match sub.next_alert().expect("alert stream") {
                Some((_, a)) if a.kind == AnomalyKind::SuperSpreader => break,
                Some(_) => continue,
                None => panic!("scan epoch closed without a spreader alert"),
            }
        }
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        // Drain stragglers so the next epoch starts clean.
        while sub.next_alert().expect("alert stream").is_some() {}
    }

    samples_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let (p50, p99) = (percentile(&samples_ms, 0.50), percentile(&samples_ms, 0.99));
    let max = *samples_ms.last().expect("at least one epoch ran");
    let budget = budget_ms(smoke);
    println!(
        "detect: {epochs} epochs, onset->alert p50 {p50:.3} ms, p99 {p99:.3} ms, max {max:.3} ms \
         (budget {budget:.0} ms)"
    );

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"detect\",\n  \"smoke\": {smoke},\n  \"cpus\": {cpus},\n  \
         \"epochs\": {epochs},\n  \"attack\": \"horizontal_scan(200, 300)\",\n  \
         \"p50_ms\": {p50:.3},\n  \"p99_ms\": {p99:.3},\n  \"max_ms\": {max:.3},\n  \
         \"budget_ms\": {budget:.1}\n}}\n"
    );
    let path = std::env::var("INSTAMEASURE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_detect.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_detect.json");
    println!("detect: wrote {path}");

    if p99 > budget {
        println!(
            "DETECT-REGRESSION: p99 alert latency {p99:.3} ms exceeds the {budget:.0} ms budget"
        );
    }

    drop(sub); // a live subscriber would hold the shutdown's drain grace
    tap.shutdown().expect("daemon drains clean");
    server.join();
}
