//! Hot-path dispatch matrix: the per-packet scalar oracle
//! ([`InstaMeasure::process`]) against the batched pipeline
//! ([`InstaMeasure::process_batch`]) under both dispatch tiers
//! (forced-scalar kernels vs AVX2 where the host supports it) across a
//! sweep of batch sizes × software-prefetch distances, on a
//! cache-hostile workload — a multi-megabyte L1 arena and hundreds of
//! thousands of flows, so every packet's counter word is a likely DRAM
//! miss that prefetching can hide and the hash/placement arithmetic the
//! SIMD kernels vectorize is what's left on the critical path.
//!
//! Besides the criterion groups, a manual timing pass writes
//! `BENCH_hotpath.json` at the repo root (override the path with
//! `INSTAMEASURE_BENCH_JSON`) recording packets/sec for every matrix
//! cell and the winning configuration. A `HOTPATH-REGRESSION` marker
//! (which the CI bench-smoke job greps for) prints when any of the
//! gates fail:
//!
//! * the best batched configuration is slower than scalar;
//! * AVX2 is available but the best SIMD cell does not beat the best
//!   forced-scalar batched cell;
//! * the batch-64 dip returns — mid-size batches must hold at least a
//!   fixed fraction of the throughput of their 16/256 neighbours (the
//!   dip was a fixed prefetch distance overshooting the batch; the
//!   distance sweep plus runtime clamping keeps it fixed).
//!
//! `INSTAMEASURE_BENCH_SMOKE=1` shrinks the trace and sample counts to a
//! few seconds of wall time — a compile-and-sanity gate, not a
//! measurement.

use std::time::Instant;

use criterion::{Criterion, Throughput};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_packet::{prefetch, simd};
use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use instameasure_sketch::SketchConfig;
use instameasure_wsaf::WsafConfig;
use rand::{Rng, SeedableRng};

/// Batch sizes the comparison sweeps; spans well below and above every
/// prefetch distance in the sweep.
const BATCH_SIZES: [usize; 4] = [16, 64, 256, 1024];
/// Prefetch distances the matrix sweeps around the compiled default.
const DISTANCES: [usize; 4] = [4, 8, 16, 32];

struct Workload {
    records: Vec<PacketRecord>,
    flows: usize,
}

/// One measured cell of the dispatch matrix.
struct Cell {
    tier: &'static str,
    batch_size: usize,
    distance: usize,
    pps: f64,
    speedup: f64,
}

/// Uniform random flows over a large key universe: maximally cache-hostile
/// for the sketch arena, which is the regime prefetching exists for.
fn workload(packets: usize, flows: usize, seed: u64) -> Workload {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let records = (0..packets as u64)
        .map(|t| {
            let i = rng.gen_range(0..flows as u32);
            let key = FlowKey::new(
                i.to_be_bytes(),
                (i ^ 0xA5A5_A5A5).to_be_bytes(),
                (i % 60_000) as u16,
                443,
                Protocol::Udp,
            );
            PacketRecord::new(key, 64 + (t % 1400) as u16, t)
        })
        .collect();
    Workload { records, flows }
}

/// A geometry big enough that the L1 word array (and the WSAF) dwarf the
/// last-level cache on typical hardware.
fn config() -> InstaMeasureConfig {
    InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder().memory_bytes(8 * 1024 * 1024).vector_bits(8).build().unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(18).build().unwrap())
}

fn run_scalar(records: &[PacketRecord]) -> usize {
    let mut im = InstaMeasure::new(config());
    for r in records {
        im.process(r);
    }
    im.wsaf().len()
}

fn run_batched(records: &[PacketRecord], batch_size: usize) -> usize {
    let mut im = InstaMeasure::new(config());
    for chunk in records.chunks(batch_size) {
        im.process_batch(chunk);
    }
    im.wsaf().len()
}

/// Best-of-`reps` packets/second for one replay function.
fn best_pps(records: &[PacketRecord], reps: usize, f: impl Fn(&[PacketRecord]) -> usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let len = f(records);
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(len);
        let pps = records.len() as f64 / secs;
        best = best.max(pps);
    }
    best
}

/// The batched tiers the matrix sweeps: forced-scalar kernels always,
/// plus AVX2 dispatch when this host can run it.
fn tiers() -> Vec<(&'static str, bool)> {
    let mut tiers = vec![("batched", true)];
    if simd::simd_supported() {
        tiers.push(("batched+avx2", false));
    }
    tiers
}

/// Times every (tier × batch size × prefetch distance) cell. Restores
/// the process-global dispatch tier and prefetch distance afterwards.
fn run_matrix(w: &Workload, reps: usize, scalar_pps: f64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (tier, disable_simd) in tiers() {
        simd::set_simd_disabled(disable_simd);
        for &distance in &DISTANCES {
            prefetch::set_prefetch_distance(distance);
            for &batch_size in &BATCH_SIZES {
                let pps = best_pps(&w.records, reps, |r| run_batched(r, batch_size));
                let speedup = pps / scalar_pps;
                println!(
                    "hot_path: {tier:>13} batch {batch_size:>5} dist {distance:>2}: \
                     {:.2} Mpps ({speedup:.2}x scalar)",
                    pps / 1e6
                );
                cells.push(Cell { tier, batch_size, distance, pps, speedup });
            }
        }
    }
    simd::set_simd_disabled(false);
    prefetch::set_prefetch_distance(prefetch::PREFETCH_DISTANCE);
    cells
}

/// Best speedup among cells matching `pred`, or 0 when none do.
fn best_where(cells: &[Cell], pred: impl Fn(&Cell) -> bool) -> f64 {
    cells.iter().filter(|c| pred(c)).map(|c| c.speedup).fold(0.0, f64::max)
}

/// The measured comparison: times the full matrix, writes the JSON
/// artifact, prints the regression marker if any gate fails.
fn measure_and_report(w: &Workload, reps: usize, smoke: bool) {
    let scalar_pps = best_pps(&w.records, reps, run_scalar);
    println!("hot_path: scalar {:.2} Mpps baseline", scalar_pps / 1e6);
    let cells = run_matrix(w, reps, scalar_pps);

    let best = cells.iter().max_by(|a, b| a.pps.total_cmp(&b.pps)).expect("matrix is non-empty");
    let best_batched_scalar = best_where(&cells, |c| c.tier == "batched");
    let best_simd = best_where(&cells, |c| c.tier == "batched+avx2");

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"tier\": \"{}\", \"batch_size\": {}, \"prefetch_distance\": {}, \
                 \"pps\": {:.0}, \"speedup\": {:.4}}}",
                c.tier, c.batch_size, c.distance, c.pps, c.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hot_path\",\n  \"smoke\": {smoke},\n  \"packets\": {},\n  \
         \"flows\": {},\n  \"prefetch_enabled\": {},\n  \"simd_supported\": {},\n  \
         \"cpu_features\": \"{}\",\n  \"scalar_pps\": {scalar_pps:.0},\n  \"matrix\": [\n{}\n  ],\n  \
         \"best\": {{\"tier\": \"{}\", \"batch_size\": {}, \"prefetch_distance\": {}, \
         \"pps\": {:.0}, \"speedup\": {:.4}}},\n  \
         \"best_batch_size\": {},\n  \"best_speedup\": {:.4},\n  \
         \"best_batched_scalar_speedup\": {best_batched_scalar:.4},\n  \
         \"best_simd_speedup\": {best_simd:.4}\n}}\n",
        w.records.len(),
        w.flows,
        prefetch::prefetch_enabled(),
        simd::simd_supported(),
        simd::cpu_features_label(),
        rows.join(",\n"),
        best.tier,
        best.batch_size,
        best.distance,
        best.pps,
        best.speedup,
        best.batch_size,
        best.speedup,
    );
    let path = std::env::var("INSTAMEASURE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_hotpath.json");
    println!(
        "hot_path: best {:.2}x ({} batch {} dist {}); wrote {path}",
        best.speedup, best.tier, best.batch_size, best.distance
    );

    // Gate 1: batching must never lose to the per-packet path.
    if best.speedup < 1.0 {
        println!("HOTPATH-REGRESSION: batched hot path slower than scalar ({:.2}x)", best.speedup);
    }
    // Gate 2: when the host has AVX2, the vector kernels must beat the
    // best the forced-scalar batched path can do at any distance.
    if simd::simd_supported() && best_simd <= best_batched_scalar {
        println!(
            "HOTPATH-REGRESSION: AVX2 dispatch ({best_simd:.2}x) did not beat \
             batched-scalar ({best_batched_scalar:.2}x)"
        );
    }
    // Gate 3: the batch-64 dip must stay fixed. With the distance swept
    // rather than pinned at the compiled default, a mid-size batch has a
    // distance that suits it — its best cell must hold near its 16/256
    // neighbours' best. The smoke threshold is looser because a 200k
    // packet replay is noisy.
    let floor = if smoke { 0.70 } else { 0.85 };
    let best_at = |bs: usize| best_where(&cells, |c| c.batch_size == bs);
    let mid = best_at(64);
    let neighbours = best_at(16).min(best_at(256));
    if mid < neighbours * floor {
        println!(
            "HOTPATH-REGRESSION: batch-64 dip returned ({mid:.2}x vs {neighbours:.2}x \
             at 16/256, floor {floor})"
        );
    }
}

fn criterion_groups(c: &mut Criterion, w: &Workload) {
    let mut group = c.benchmark_group("hot_path");
    group.sample_size(10);
    group.throughput(Throughput::Elements(w.records.len() as u64));
    group.bench_function("scalar", |b| b.iter(|| run_scalar(&w.records)));
    for (tier, disable_simd) in tiers() {
        simd::set_simd_disabled(disable_simd);
        for &bs in &BATCH_SIZES {
            group.bench_function(format!("{tier}/{bs}"), |b| {
                b.iter(|| run_batched(&w.records, bs));
            });
        }
    }
    simd::set_simd_disabled(false);
    group.finish();
}

fn main() {
    let smoke = std::env::var("INSTAMEASURE_BENCH_SMOKE").is_ok();
    let (packets, flows, reps) =
        if smoke { (200_000, 100_000, 1) } else { (4_000_000, 400_000, 3) };
    let w = workload(packets, flows, 42);

    measure_and_report(&w, reps, smoke);

    // The criterion view of the same comparison (skipped in smoke mode —
    // the manual pass above is the quick gate).
    if !smoke {
        let mut c = Criterion::default();
        criterion_groups(&mut c, &w);
    }
}
