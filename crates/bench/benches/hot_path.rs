//! Scalar vs batched hot path: the single-hash + software-prefetch batch
//! pipeline ([`InstaMeasure::process_batch`]) against the per-packet
//! scalar oracle ([`InstaMeasure::process`]) on a cache-hostile workload —
//! a multi-megabyte L1 arena and hundreds of thousands of flows, so every
//! packet's counter word is a likely DRAM miss that prefetching can hide.
//!
//! Besides the criterion groups, a manual timing pass writes
//! `BENCH_hotpath.json` at the repo root (override the path with
//! `INSTAMEASURE_BENCH_JSON`) recording packets/sec for both paths and the
//! speedup per batch size. If the best batched configuration is *slower*
//! than scalar the run prints a `HOTPATH-REGRESSION` marker, which the CI
//! bench-smoke job greps for.
//!
//! `INSTAMEASURE_BENCH_SMOKE=1` shrinks the trace and sample counts to a
//! few seconds of wall time — a compile-and-sanity gate, not a measurement.

use std::time::Instant;

use criterion::{Criterion, Throughput};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_packet::prefetch;
use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use instameasure_sketch::SketchConfig;
use instameasure_wsaf::WsafConfig;
use rand::{Rng, SeedableRng};

/// Batch sizes the comparison sweeps; spans well below and above the
/// prefetch distance.
const BATCH_SIZES: [usize; 4] = [16, 64, 256, 1024];

struct Workload {
    records: Vec<PacketRecord>,
    flows: usize,
}

/// Uniform random flows over a large key universe: maximally cache-hostile
/// for the sketch arena, which is the regime prefetching exists for.
fn workload(packets: usize, flows: usize, seed: u64) -> Workload {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let records = (0..packets as u64)
        .map(|t| {
            let i = rng.gen_range(0..flows as u32);
            let key = FlowKey::new(
                i.to_be_bytes(),
                (i ^ 0xA5A5_A5A5).to_be_bytes(),
                (i % 60_000) as u16,
                443,
                Protocol::Udp,
            );
            PacketRecord::new(key, 64 + (t % 1400) as u16, t)
        })
        .collect();
    Workload { records, flows }
}

/// A geometry big enough that the L1 word array (and the WSAF) dwarf the
/// last-level cache on typical hardware.
fn config() -> InstaMeasureConfig {
    InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder().memory_bytes(8 * 1024 * 1024).vector_bits(8).build().unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(18).build().unwrap())
}

fn run_scalar(records: &[PacketRecord]) -> usize {
    let mut im = InstaMeasure::new(config());
    for r in records {
        im.process(r);
    }
    im.wsaf().len()
}

fn run_batched(records: &[PacketRecord], batch_size: usize) -> usize {
    let mut im = InstaMeasure::new(config());
    for chunk in records.chunks(batch_size) {
        im.process_batch(chunk);
    }
    im.wsaf().len()
}

/// Best-of-`reps` packets/second for one replay function.
fn best_pps(records: &[PacketRecord], reps: usize, f: impl Fn(&[PacketRecord]) -> usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let len = f(records);
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(len);
        let pps = records.len() as f64 / secs;
        best = best.max(pps);
    }
    best
}

/// The measured comparison: times both paths, writes the JSON artifact,
/// prints the regression marker if batching lost.
fn measure_and_report(w: &Workload, reps: usize, smoke: bool) {
    let scalar_pps = best_pps(&w.records, reps, run_scalar);
    let mut rows = Vec::new();
    let mut best_speedup = 0.0f64;
    let mut best_batch = 0usize;
    for &bs in &BATCH_SIZES {
        let pps = best_pps(&w.records, reps, |r| run_batched(r, bs));
        let speedup = pps / scalar_pps;
        if speedup > best_speedup {
            best_speedup = speedup;
            best_batch = bs;
        }
        println!(
            "hot_path: batch {bs:>5}: {:.2} Mpps vs scalar {:.2} Mpps ({speedup:.2}x)",
            pps / 1e6,
            scalar_pps / 1e6
        );
        rows.push(format!(
            "    {{\"batch_size\": {bs}, \"pps\": {pps:.0}, \"speedup\": {speedup:.4}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"hot_path\",\n  \"smoke\": {smoke},\n  \"packets\": {},\n  \
         \"flows\": {},\n  \"prefetch_enabled\": {},\n  \"prefetch_distance\": {},\n  \
         \"scalar_pps\": {scalar_pps:.0},\n  \"batched\": [\n{}\n  ],\n  \
         \"best_batch_size\": {best_batch},\n  \"best_speedup\": {best_speedup:.4}\n}}\n",
        w.records.len(),
        w.flows,
        prefetch::prefetch_enabled(),
        prefetch::PREFETCH_DISTANCE,
        rows.join(",\n")
    );
    let path = std::env::var("INSTAMEASURE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_hotpath.json");
    println!("hot_path: best speedup {best_speedup:.2}x (batch {best_batch}); wrote {path}");
    if best_speedup < 1.0 {
        println!("HOTPATH-REGRESSION: batched hot path slower than scalar ({best_speedup:.2}x)");
    }
}

fn criterion_groups(c: &mut Criterion, w: &Workload) {
    let mut group = c.benchmark_group("hot_path");
    group.sample_size(10);
    group.throughput(Throughput::Elements(w.records.len() as u64));
    group.bench_function("scalar", |b| b.iter(|| run_scalar(&w.records)));
    for &bs in &BATCH_SIZES {
        group.bench_function(format!("batched/{bs}"), |b| {
            b.iter(|| run_batched(&w.records, bs));
        });
    }
    group.finish();
}

fn main() {
    let smoke = std::env::var("INSTAMEASURE_BENCH_SMOKE").is_ok();
    let (packets, flows, reps) =
        if smoke { (200_000, 100_000, 1) } else { (4_000_000, 400_000, 3) };
    let w = workload(packets, flows, 42);

    measure_and_report(&w, reps, smoke);

    // The criterion view of the same comparison (skipped in smoke mode —
    // the manual pass above is the quick gate).
    if !smoke {
        let mut c = Criterion::default();
        criterion_groups(&mut c, &w);
    }
}
