//! Criterion micro-bench: flow hashing and frame parsing — the per-packet
//! fixed costs in front of the sketch.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use instameasure_packet::chunk::{PcapChunkReader, RecordStream};
use instameasure_packet::pcap::{read_records, PcapWriter, TsResolution};
use instameasure_packet::{hash, parse, synth, FlowKey, PacketRecord, Protocol};

fn hash_and_parse(c: &mut Criterion) {
    let keys: Vec<FlowKey> = (0..1024u32)
        .map(|i| FlowKey::new(i.to_be_bytes(), (!i).to_be_bytes(), 80, 443, Protocol::Tcp))
        .collect();
    let frames: Vec<Vec<u8>> =
        keys.iter().map(|k| synth::synthesize_frame(&PacketRecord::new(*k, 300, 0))).collect();

    let mut group = c.benchmark_group("per_packet_fixed_costs");
    group.sample_size(20);
    group.throughput(Throughput::Elements(keys.len() as u64));

    group.bench_function("flow_hash64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc ^= hash::flow_hash64(k, 7);
            }
            acc
        });
    });

    group.bench_function("parse_ethernet", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for f in &frames {
                total += u32::from(parse::parse_ethernet(f).unwrap().key.src_port);
            }
            total
        });
    });

    group.finish();
}

/// Read+parse throughput over a full capture: the owned-buffer
/// `read_records` baseline against the zero-copy chunk reader, both over an
/// in-memory capture and a real mapped file. The acceptance bar for the
/// zero-copy work is ≥1.5× the owned path on the streamed drain.
fn pcap_ingest(c: &mut Criterion) {
    const PACKETS: u32 = 1_000_000;
    let mut file = Vec::new();
    let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
    for i in 0..PACKETS {
        let key = FlowKey::new(
            (i % 65_536).to_be_bytes(),
            (!i).to_be_bytes(),
            (i % 50_000) as u16,
            443,
            Protocol::Tcp,
        );
        let rec = PacketRecord::new(key, 60 + (i % 1400) as u16, u64::from(i) * 800);
        w.write_packet(rec.ts_nanos, &synth::synthesize_frame(&rec)).unwrap();
    }
    w.into_inner().unwrap();

    let path =
        std::env::temp_dir().join(format!("instameasure_bench_ingest_{}.pcap", std::process::id()));
    std::fs::write(&path, &file).unwrap();

    let mut group = c.benchmark_group("pcap_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(PACKETS)));

    // Baseline: the pre-zero-copy CLI path — buffered file reads, every
    // record body copied out, the whole record vector collected.
    group.bench_function("owned_read_records_file", |b| {
        b.iter(|| {
            let reader = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
            let (records, skipped) = read_records(reader).unwrap();
            assert_eq!(skipped, 0);
            records.len()
        });
    });

    // Owned reader over pre-loaded bytes: isolates the copy/collect cost
    // from file I/O.
    group.bench_function("owned_read_records_mem", |b| {
        b.iter(|| {
            let (records, skipped) = read_records(&file[..]).unwrap();
            assert_eq!(skipped, 0);
            records.len()
        });
    });

    // Zero-copy streamed drain of the same in-memory bytes: borrowed views
    // parsed in place, no per-packet allocation, nothing collected.
    group.bench_function("zero_copy_stream", |b| {
        b.iter(|| {
            let mut stream = RecordStream::new(PcapChunkReader::from_reader(&file[..]).unwrap());
            let mut packets = 0u64;
            let mut acc = 0u64;
            for rec in stream.by_ref() {
                packets += 1;
                acc ^= u64::from(rec.key.src_port);
            }
            stream.finish().unwrap();
            assert_eq!(packets, u64::from(PACKETS));
            acc
        });
    });

    // Same drain straight out of a file mapping (page cache hot).
    group.bench_function("zero_copy_mmap", |b| {
        b.iter(|| {
            let mut stream = RecordStream::new(PcapChunkReader::open(&path).unwrap());
            let mut packets = 0u64;
            let mut acc = 0u64;
            for rec in stream.by_ref() {
                packets += 1;
                acc ^= u64::from(rec.key.src_port);
            }
            stream.finish().unwrap();
            assert_eq!(packets, u64::from(PACKETS));
            acc
        });
    });

    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, hash_and_parse, pcap_ingest);
criterion_main!(benches);
