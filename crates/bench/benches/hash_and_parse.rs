//! Criterion micro-bench: flow hashing and frame parsing — the per-packet
//! fixed costs in front of the sketch.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use instameasure_packet::{hash, parse, synth, FlowKey, PacketRecord, Protocol};

fn hash_and_parse(c: &mut Criterion) {
    let keys: Vec<FlowKey> = (0..1024u32)
        .map(|i| FlowKey::new(i.to_be_bytes(), (!i).to_be_bytes(), 80, 443, Protocol::Tcp))
        .collect();
    let frames: Vec<Vec<u8>> =
        keys.iter().map(|k| synth::synthesize_frame(&PacketRecord::new(*k, 300, 0))).collect();

    let mut group = c.benchmark_group("per_packet_fixed_costs");
    group.sample_size(20);
    group.throughput(Throughput::Elements(keys.len() as u64));

    group.bench_function("flow_hash64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc ^= hash::flow_hash64(k, 7);
            }
            acc
        });
    });

    group.bench_function("parse_ethernet", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for f in &frames {
                total += u32::from(parse::parse_ethernet(f).unwrap().key.src_port);
            }
            total
        });
    });

    group.finish();
}

criterion_group!(benches, hash_and_parse);
criterion_main!(benches);
