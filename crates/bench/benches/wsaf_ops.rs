//! Criterion micro-bench: WSAF accumulate/lookup cost at varying load
//! factors — the DRAM-side cost of the `{ips = pps}` relaxation argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use instameasure_packet::{FlowKey, Protocol};
use instameasure_wsaf::{WsafConfig, WsafTable};

fn key(i: u32) -> FlowKey {
    FlowKey::new(i.to_be_bytes(), (i ^ 0x5A5A).to_be_bytes(), 80, 443, Protocol::Tcp)
}

fn wsaf_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsaf");
    group.sample_size(10);

    for load_pct in [25u32, 75] {
        let cfg = WsafConfig::builder().entries_log2(16).probe_limit(16).build().unwrap();
        let n = (1u32 << 16) * load_pct / 100;
        let ops = 10_000u32;
        group.throughput(Throughput::Elements(u64::from(ops)));

        group.bench_function(BenchmarkId::new("accumulate", format!("{load_pct}pct")), |b| {
            b.iter(|| {
                let mut t = WsafTable::new(cfg);
                for i in 0..n {
                    t.accumulate(&key(i), 1.0, 64.0, 0);
                }
                for i in 0..ops {
                    t.accumulate(&key(i % n.max(1)), 1.0, 64.0, 1);
                }
                t.len()
            });
        });

        group.bench_function(BenchmarkId::new("lookup", format!("{load_pct}pct")), |b| {
            let mut t = WsafTable::new(cfg);
            for i in 0..n {
                t.accumulate(&key(i), 1.0, 64.0, 0);
            }
            b.iter(|| {
                let mut hits = 0u32;
                for i in 0..ops {
                    if t.get(&key(i % n.max(1))).is_some() {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, wsaf_ops);
criterion_main!(benches);
