//! Auto-tuner bench: calibrate this host, solve the documented default
//! target, and check the plan's promise against a real replay.
//!
//! Four gates, each printing a `TUNE-REGRESSION` marker on failure
//! (the CI tune-smoke job greps for it):
//!
//! * the calibrated latency ladder must be monotone — a rung that gets
//!   *faster* as the working set grows means the microbenchmark broke;
//! * the documented default request must stay feasible on the golden
//!   paper profile (solver regressions show up here first);
//! * the solved plan's delivered relative error on a synthetic Zipf
//!   trace must stay inside the stated epsilon;
//! * one solve must stay interactive (the daemon re-solves every epoch
//!   rotation, so a slow solver eats the detection budget).
//!
//! Writes `BENCH_tune.json` at the repo root (override with
//! `INSTAMEASURE_BENCH_JSON`). `INSTAMEASURE_BENCH_SMOKE=1` switches
//! the calibrator to its bounded sweep and shrinks the replay.

use std::time::Instant;

use instameasure_autotune::{
    calibrate, measured_epsilon, solve, zipf_sizes, CalibrationOptions, MachineProfile, TuneRequest,
};

fn main() {
    let smoke = std::env::var("INSTAMEASURE_BENCH_SMOKE").is_ok();
    let mut regressions = 0u32;

    // --- Gate 1: calibrate this host; the ladder must be monotone. ---
    let opts = if smoke { CalibrationOptions::smoke() } else { CalibrationOptions::from_env() };
    let host = calibrate(&opts);
    println!(
        "tune: calibrated {} rungs in {:.2} s — {:.1} ns cache-resident, {:.1} ns DRAM, \
         hash {:.1} ns, seq {:.2} ns",
        host.points().len(),
        host.calibration_nanos() as f64 / 1e9,
        host.sram_ns(),
        host.dram_ns(),
        host.hash_ns(),
        host.seq_ns()
    );
    // Shared CI cores jitter individual rungs; only a clear inversion
    // (next rung measurably faster than a smaller working set) is a
    // broken calibrator rather than noise.
    let tolerance = 0.8;
    for w in host.points().windows(2) {
        if w[1].nanos < w[0].nanos * tolerance {
            println!(
                "TUNE-REGRESSION: latency ladder inverted — {} B at {:.2} ns but {} B at {:.2} ns",
                w[0].bytes, w[0].nanos, w[1].bytes, w[1].nanos
            );
            regressions += 1;
        }
    }

    // --- Gate 2: the documented default solves on the golden profile. ---
    let paper = MachineProfile::paper();
    let epsilon = 0.1;
    let req = TuneRequest::accuracy(1.0e6, epsilon, 0.05);
    let (flows, heaviest) = if smoke { (50_000, 10_000) } else { (400_000, 10_000) };
    let sizes = zipf_sizes(flows, heaviest);
    let Some(plan) = solve(&paper, &req, &sizes) else {
        println!(
            "TUNE-REGRESSION: epsilon {epsilon} at 1 Mpps became infeasible on the paper profile"
        );
        std::process::exit(1);
    };
    println!("{plan}");

    // --- Gate 3: the plan delivers its epsilon on a real replay. ---
    let t0 = Instant::now();
    let measured = measured_epsilon(&plan, &sizes, 50, 0xBE7C);
    let replay_s = t0.elapsed().as_secs_f64();
    println!(
        "tune: {flows} flows replayed in {replay_s:.2} s — measured epsilon {measured:.4} \
         (predicted {:.4}, target {epsilon})",
        plan.predicted_epsilon
    );
    if measured > epsilon {
        println!(
            "TUNE-REGRESSION: delivered error {measured:.4} exceeds the stated {epsilon} target"
        );
        regressions += 1;
    }

    // --- Gate 4: a solve stays interactive (the daemon re-solves every
    // epoch rotation). ---
    let host_sizes = zipf_sizes(100_000, 1_000_000);
    let reps = if smoke { 5 } else { 20 };
    let t0 = Instant::now();
    let mut feasible_on_host = false;
    for _ in 0..reps {
        feasible_on_host = solve(&host, &req, &host_sizes).is_some();
    }
    let solve_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let solve_budget_ms = if smoke { 500.0 } else { 250.0 };
    println!(
        "tune: one solve takes {solve_ms:.2} ms on this host's profile \
         (feasible here: {feasible_on_host}, budget {solve_budget_ms:.0} ms)"
    );
    if solve_ms > solve_budget_ms {
        println!(
            "TUNE-REGRESSION: {solve_ms:.2} ms per solve exceeds the {solve_budget_ms:.0} ms \
             budget"
        );
        regressions += 1;
    }

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"tune\",\n  \"smoke\": {smoke},\n  \"cpus\": {cpus},\n  \
         \"host_sram_ns\": {:.2},\n  \"host_dram_ns\": {:.2},\n  \"host_hash_ns\": {:.2},\n  \
         \"calibration_s\": {:.2},\n  \"workload_flows\": {flows},\n  \
         \"plan_l1_bytes\": {},\n  \"plan_vector_bits\": {},\n  \"plan_layers\": {},\n  \
         \"plan_wsaf_log2\": {},\n  \"predicted_epsilon\": {:.4},\n  \
         \"measured_epsilon\": {measured:.4},\n  \"epsilon_target\": {epsilon},\n  \
         \"solve_ms\": {solve_ms:.2},\n  \"regressions\": {regressions}\n}}\n",
        host.sram_ns(),
        host.dram_ns(),
        host.hash_ns(),
        host.calibration_nanos() as f64 / 1e9,
        plan.l1_memory_bytes,
        plan.vector_bits,
        plan.layers,
        plan.wsaf_entries_log2,
        plan.predicted_epsilon,
    );
    let path = std::env::var("INSTAMEASURE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_tune.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_tune.json");
    println!("tune: wrote {path}");
}
