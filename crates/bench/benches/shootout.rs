//! Filter shootout: every [`FilterKind`] front end at the *same* total
//! memory budget on the same trace, measuring what the redesign is for —
//! can an alternate filter beat the paper's FlowRegulator on any axis?
//!
//! Per kind the run reports:
//!
//! * **ARE** — average relative error over the top-1000 true flows,
//!   queried through the full pipeline (WSAF + filter residual);
//! * **throughput** — end-to-end replay Mpps through
//!   [`InstaMeasure::process_batch`] in 256-packet chunks;
//! * **ips reduction** — `1 − updates/packets`, the fraction of packets
//!   the filter absorbed instead of inserting into the WSAF (paper Fig. 7
//!   territory: the regulator's whole purpose).
//!
//! Results land in `BENCH_shootout.json` at the repo root (override with
//! `INSTAMEASURE_BENCH_JSON`). Sanity failures print a
//! `SHOOTOUT-REGRESSION` marker which the CI bench-smoke job greps for.
//! `INSTAMEASURE_BENCH_SMOKE=1` shrinks the trace to a few seconds of
//! wall time — a compile-and-sanity gate, not a measurement.

use std::time::Instant;

use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_packet::PacketRecord;
use instameasure_sketch::{FilterKind, SketchConfig, ALL_FILTER_KINDS};
use instameasure_traffic::presets::caida_like;
use instameasure_wsaf::WsafConfig;

const CHUNK: usize = 256;

/// One filter kind's scorecard.
struct Row {
    kind: FilterKind,
    memory_bytes: usize,
    mpps: f64,
    are_top1000: f64,
    ips_reduction: f64,
}

/// The shared geometry every kind is sized against: a 32 KiB L1 sketch
/// (so [`FilterKind::build`]'s equal-memory anchor gives each filter the
/// same ~128 KiB total) over a 64 Ki-entry WSAF.
fn config(kind: FilterKind, seed: u64) -> InstaMeasureConfig {
    InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(16).build().unwrap())
        .with_filter(kind)
}

/// Replays the trace once, returning the populated system and the replay
/// wall time. Deterministic: every rep produces an identical system.
fn replay(records: &[PacketRecord], kind: FilterKind, seed: u64) -> (InstaMeasure, f64) {
    let mut im = InstaMeasure::new(config(kind, seed));
    let start = Instant::now();
    for chunk in records.chunks(CHUNK) {
        im.process_batch(chunk);
    }
    let secs = start.elapsed().as_secs_f64();
    (im, secs)
}

fn main() {
    let smoke = std::env::var("INSTAMEASURE_BENCH_SMOKE").is_ok();
    let (scale, reps) = if smoke { (0.02, 1) } else { (0.3, 3) };
    let seed = 42u64;
    let trace = caida_like(scale, seed);
    let top: Vec<_> = trace.stats.truth.top_k(1000, false);
    println!(
        "shootout: {} packets, {} flows, {} ranked flows, {} kinds",
        trace.records.len(),
        trace.stats.flows,
        top.len(),
        ALL_FILTER_KINDS.len()
    );

    let mut rows = Vec::new();
    for kind in ALL_FILTER_KINDS {
        let mut best_secs = f64::INFINITY;
        let mut im = None;
        for _ in 0..reps {
            let (sys, secs) = replay(&trace.records, kind, seed);
            best_secs = best_secs.min(secs);
            im = Some(sys);
        }
        let im = im.expect("at least one rep");
        let are = top
            .iter()
            .map(|(k, t)| (im.estimate_packets(k) - *t as f64).abs() / *t as f64)
            .sum::<f64>()
            / top.len().max(1) as f64;
        let stats = im.filter_stats();
        let ips_reduction = 1.0 - stats.updates as f64 / stats.packets.max(1) as f64;
        let row = Row {
            kind,
            memory_bytes: im.filter().memory_bytes(),
            mpps: trace.records.len() as f64 / best_secs / 1e6,
            are_top1000: are,
            ips_reduction,
        };
        println!(
            "shootout: {:<10} {:>7} B  {:>7.2} Mpps  ARE {:.4}  ips-reduction {:.4}",
            row.kind.name(),
            row.memory_bytes,
            row.mpps,
            row.are_top1000,
            row.ips_reduction
        );
        rows.push(row);
    }

    // Sanity gates: every kind must actually run, keep to the shared
    // budget, and the paper's own design must stay accurate and keep
    // suppressing WSAF insertions. Any failure prints the CI marker.
    let budget = 32 * 1024 * 4; // memory_bytes × (1 + noise_classes) for b=8
    let mut regressions = Vec::new();
    for row in &rows {
        if !(row.mpps.is_finite() && row.mpps > 0.0) {
            regressions.push(format!("{} produced no throughput", row.kind.name()));
        }
        if row.memory_bytes > budget {
            regressions.push(format!(
                "{} exceeds the shared budget: {} > {budget} bytes",
                row.kind.name(),
                row.memory_bytes
            ));
        }
        if !row.are_top1000.is_finite() {
            regressions.push(format!("{} ARE is not finite", row.kind.name()));
        }
    }
    let reg = rows.iter().find(|r| r.kind == FilterKind::Regulator).expect("regulator row");
    if reg.are_top1000 > 0.35 {
        regressions.push(format!("regulator ARE {:.4} above 0.35", reg.are_top1000));
    }
    if reg.ips_reduction < 0.5 {
        regressions.push(format!("regulator ips reduction {:.4} below 0.5", reg.ips_reduction));
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"kind\": \"{}\", \"memory_bytes\": {}, \"mpps\": {:.4}, \
                 \"are_top1000\": {:.6}, \"ips_reduction\": {:.6}}}",
                r.kind.name(),
                r.memory_bytes,
                r.mpps,
                r.are_top1000,
                r.ips_reduction
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"shootout\",\n  \"smoke\": {smoke},\n  \"packets\": {},\n  \
         \"flows\": {},\n  \"ranked_flows\": {},\n  \"budget_bytes\": {budget},\n  \
         \"filters\": [\n{}\n  ]\n}}\n",
        trace.records.len(),
        trace.stats.flows,
        top.len(),
        json_rows.join(",\n")
    );
    let path = std::env::var("INSTAMEASURE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_shootout.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_shootout.json");
    println!("shootout: wrote {path}");

    for r in &regressions {
        println!("SHOOTOUT-REGRESSION: {r}");
    }
    if regressions.is_empty() {
        println!("shootout: all sanity gates passed");
    }
}
