//! Benchmark harness for the InstaMeasure reproduction.
//!
//! Every figure and table of the paper's evaluation has a module under
//! [`figs`] with a `run(&BenchArgs)` entry point, and a thin binary in
//! `src/bin/` wrapping it. All binaries accept:
//!
//! ```text
//! --scale <f64>          workload scale factor (default per figure)
//! --seed <u64>           RNG seed (default 42)
//! --metrics-json <path>  write the run's telemetry Snapshot as JSON
//! ```
//!
//! Output is TSV on stdout plus a `# paper-vs-measured` footer comparing
//! the reproduced numbers with the paper's. Every figure's `run` returns a
//! telemetry [`Snapshot`] (its systems' [`Instrumented`] output plus
//! figure-level gauges); the binaries write it to `--metrics-json` via
//! [`main_entry`]. `run_all` executes every figure in sequence (as
//! `cargo run -rp instameasure-bench --bin run_all`) and merges the
//! snapshots, prefixing each by its section name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use instameasure_telemetry::{Instrumented, Snapshot};

pub mod figs;

/// Common command-line arguments of the figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Workload scale factor (1.0 = each figure's default size).
    pub scale: f64,
    /// RNG seed shared by trace generation and sketches.
    pub seed: u64,
    /// Where to write the run's telemetry snapshot as JSON (`None` = don't).
    pub metrics_json: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { scale: 1.0, seed: 42, metrics_json: None }
    }
}

impl BenchArgs {
    /// Parses `--scale`, `--seed` and `--metrics-json` from the process
    /// arguments, falling back to defaults. Unknown arguments are ignored
    /// so the binaries stay composable with cargo's own flags.
    #[must_use]
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.seed = v;
                        i += 1;
                    }
                }
                "--metrics-json" => {
                    if let Some(v) = argv.get(i + 1) {
                        args.metrics_json = Some(v.clone());
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        args
    }
}

/// Writes `snap` to `args.metrics_json` as JSON, if the flag was given.
///
/// # Panics
///
/// Panics if the file cannot be written — a bench run asked to persist its
/// metrics must not silently drop them.
pub fn write_metrics(args: &BenchArgs, snap: &Snapshot) {
    if let Some(path) = &args.metrics_json {
        std::fs::write(path, snap.to_json())
            .unwrap_or_else(|e| panic!("cannot write metrics JSON to {path}: {e}"));
        eprintln!("# metrics JSON written to {path}");
    }
}

/// Standard `fn main` body of a figure binary: parse the arguments, run
/// the figure, persist its telemetry snapshot if requested.
pub fn main_entry(run: impl FnOnce(&BenchArgs) -> Snapshot) {
    let args = BenchArgs::parse();
    let snap = run(&args);
    write_metrics(&args, &snap);
}

/// One paper-vs-measured comparison line for a figure's footer.
#[derive(Debug, Clone)]
pub struct PaperCheck {
    /// What is being compared.
    pub name: String,
    /// The paper's reported value (free text, e.g. "12-19%").
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the measured value matches the paper's *shape* (who wins,
    /// rough factor, trend direction).
    pub holds: bool,
}

/// Prints the standard figure footer.
pub fn print_checks(figure: &str, checks: &[PaperCheck]) {
    println!("#");
    println!("# paper-vs-measured ({figure})");
    for c in checks {
        println!(
            "#   {:<44} paper: {:<22} measured: {:<22} [{}]",
            c.name,
            c.paper,
            c.measured,
            if c.holds { "OK" } else { "DIVERGES" }
        );
    }
}

/// Formats a count tersely (`1.23M`, `45.6k`).
#[must_use]
pub fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let a = BenchArgs::default();
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn fmt_count_ranges() {
        assert_eq!(fmt_count(12.0), "12");
        assert_eq!(fmt_count(4_500.0), "4.5k");
        assert_eq!(fmt_count(2_500_000.0), "2.50M");
        assert_eq!(fmt_count(3.2e9), "3.20G");
    }
}
