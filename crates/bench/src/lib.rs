//! Benchmark harness for the InstaMeasure reproduction.
//!
//! Every figure and table of the paper's evaluation has a module under
//! [`figs`] with a `run(&BenchArgs)` entry point, and a thin binary in
//! `src/bin/` wrapping it. All binaries accept:
//!
//! ```text
//! --scale <f64>   workload scale factor (default per figure)
//! --seed <u64>    RNG seed (default 42)
//! ```
//!
//! Output is TSV on stdout plus a `# paper-vs-measured` footer comparing
//! the reproduced numbers with the paper's. `run_all` executes every
//! figure in sequence (as `cargo run -rp instameasure-bench --bin run_all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figs;

/// Common command-line arguments of the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchArgs {
    /// Workload scale factor (1.0 = each figure's default size).
    pub scale: f64,
    /// RNG seed shared by trace generation and sketches.
    pub seed: u64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { scale: 1.0, seed: 42 }
    }
}

impl BenchArgs {
    /// Parses `--scale` and `--seed` from the process arguments,
    /// falling back to defaults. Unknown arguments are ignored so the
    /// binaries stay composable with cargo's own flags.
    #[must_use]
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        args
    }
}

/// One paper-vs-measured comparison line for a figure's footer.
#[derive(Debug, Clone)]
pub struct PaperCheck {
    /// What is being compared.
    pub name: String,
    /// The paper's reported value (free text, e.g. "12-19%").
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the measured value matches the paper's *shape* (who wins,
    /// rough factor, trend direction).
    pub holds: bool,
}

/// Prints the standard figure footer.
pub fn print_checks(figure: &str, checks: &[PaperCheck]) {
    println!("#");
    println!("# paper-vs-measured ({figure})");
    for c in checks {
        println!(
            "#   {:<44} paper: {:<22} measured: {:<22} [{}]",
            c.name,
            c.paper,
            c.measured,
            if c.holds { "OK" } else { "DIVERGES" }
        );
    }
}

/// Formats a count tersely (`1.23M`, `45.6k`).
#[must_use]
pub fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let a = BenchArgs::default();
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn fmt_count_ranges() {
        assert_eq!(fmt_count(12.0), "12");
        assert_eq!(fmt_count(4_500.0), "4.5k");
        assert_eq!(fmt_count(2_500_000.0), "2.50M");
        assert_eq!(fmt_count(3.2e9), "3.20G");
    }
}
