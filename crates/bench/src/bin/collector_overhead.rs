//! Delegation vs InstaMeasure latency/bandwidth comparison.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::overhead::run);
}
