//! Delegation vs InstaMeasure latency/bandwidth comparison.
fn main() {
    instameasure_bench::figs::overhead::run(&instameasure_bench::BenchArgs::parse());
}
