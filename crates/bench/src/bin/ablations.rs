//! Runs the design-choice ablation studies (see DESIGN.md).
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::ablations::run);
}
