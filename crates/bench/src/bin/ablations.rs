//! Runs the design-choice ablation studies (see DESIGN.md).
fn main() {
    instameasure_bench::figs::ablations::run(&instameasure_bench::BenchArgs::parse());
}
