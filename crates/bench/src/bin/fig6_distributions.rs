//! Regenerates paper Fig. 6.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::fig6::run);
}
