//! Regenerates paper Fig. 6.
fn main() {
    instameasure_bench::figs::fig6::run(&instameasure_bench::BenchArgs::parse());
}
