//! Regenerates paper Fig. 8 (a/b/c).
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::fig8::run);
}
