//! Regenerates paper Fig. 9(b).
fn main() {
    instameasure_bench::figs::fig9b::run(&instameasure_bench::BenchArgs::parse());
}
