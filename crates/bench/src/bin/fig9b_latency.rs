//! Regenerates paper Fig. 9(b).
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::fig9b::run);
}
