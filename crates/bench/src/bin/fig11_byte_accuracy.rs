//! Regenerates paper Fig. 11.
use instameasure_bench::figs::fig10_11::{run, Metric};
fn main() {
    instameasure_bench::main_entry(|a| run(a, Metric::Bytes));
}
