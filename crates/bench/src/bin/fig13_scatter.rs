//! Regenerates paper Fig. 13.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::fig13::run);
}
