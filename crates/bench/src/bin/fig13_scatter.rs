//! Regenerates paper Fig. 13.
fn main() {
    instameasure_bench::figs::fig13::run(&instameasure_bench::BenchArgs::parse());
}
