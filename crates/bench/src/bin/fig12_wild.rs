//! Regenerates paper Fig. 12.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::fig12::run);
}
