//! Regenerates paper Fig. 12.
fn main() {
    instameasure_bench::figs::fig12::run(&instameasure_bench::BenchArgs::parse());
}
