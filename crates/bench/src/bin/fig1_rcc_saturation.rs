//! Regenerates paper Fig. 1.
fn main() {
    instameasure_bench::figs::fig1::run(&instameasure_bench::BenchArgs::parse());
}
