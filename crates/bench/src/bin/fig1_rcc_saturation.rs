//! Regenerates paper Fig. 1.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::fig1::run);
}
