//! Regenerates paper Fig. 9(a).
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::fig9a::run);
}
