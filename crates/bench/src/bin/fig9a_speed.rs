//! Regenerates paper Fig. 9(a).
fn main() {
    instameasure_bench::figs::fig9a::run(&instameasure_bench::BenchArgs::parse());
}
