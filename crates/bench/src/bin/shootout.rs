//! Baseline shootout: all counters on the same trace.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::shootout::run);
}
