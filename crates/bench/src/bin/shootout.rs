//! Baseline shootout: all counters on the same trace.
fn main() {
    instameasure_bench::figs::shootout::run(&instameasure_bench::BenchArgs::parse());
}
