//! Runs every figure/table binary in sequence (same --scale/--seed).
use instameasure_bench::figs;
use instameasure_bench::BenchArgs;

type Section = (&'static str, fn(&BenchArgs));

fn main() {
    let args = BenchArgs::parse();
    let sections: [Section; 11] = [
        ("fig1", figs::fig1::run),
        ("fig6", figs::fig6::run),
        ("fig7", figs::fig7::run),
        ("fig8", figs::fig8::run),
        ("fig9a", figs::fig9a::run),
        ("fig9b", figs::fig9b::run),
        ("fig10", |a| figs::fig10_11::run(a, figs::fig10_11::Metric::Packets)),
        ("fig11", |a| figs::fig10_11::run(a, figs::fig10_11::Metric::Bytes)),
        ("fig12", figs::fig12::run),
        ("fig13", figs::fig13::run),
        ("fig14", figs::fig14::run),
    ];
    for (name, f) in sections {
        println!("\n==================== {name} ====================");
        f(&args);
    }
    println!("\n==================== table_csm ====================");
    figs::table_csm::run(&args);
    println!("\n==================== ablations ====================");
    figs::ablations::run(&args);
    println!("\n==================== collector_overhead ====================");
    figs::overhead::run(&args);
    println!("\n==================== sensitivity ====================");
    figs::sensitivity::run(&args);
    println!("\n==================== shootout ====================");
    figs::shootout::run(&args);
}
