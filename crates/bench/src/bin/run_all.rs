//! Runs every figure/table binary in sequence (same --scale/--seed).
//!
//! With `--metrics-json <path>`, every section's telemetry snapshot is
//! merged under a `<section>.` prefix into one combined JSON document.
use instameasure_bench::figs;
use instameasure_bench::{write_metrics, BenchArgs, Snapshot};

type Section = (&'static str, fn(&BenchArgs) -> Snapshot);

fn main() {
    let args = BenchArgs::parse();
    let sections: [Section; 16] = [
        ("fig1", figs::fig1::run),
        ("fig6", figs::fig6::run),
        ("fig7", figs::fig7::run),
        ("fig8", figs::fig8::run),
        ("fig9a", figs::fig9a::run),
        ("fig9b", figs::fig9b::run),
        ("fig10", |a| figs::fig10_11::run(a, figs::fig10_11::Metric::Packets)),
        ("fig11", |a| figs::fig10_11::run(a, figs::fig10_11::Metric::Bytes)),
        ("fig12", figs::fig12::run),
        ("fig13", figs::fig13::run),
        ("fig14", figs::fig14::run),
        ("table_csm", figs::table_csm::run),
        ("ablations", figs::ablations::run),
        ("collector_overhead", figs::overhead::run),
        ("sensitivity", figs::sensitivity::run),
        ("shootout", figs::shootout::run),
    ];
    let mut combined = Snapshot::new();
    for (name, f) in sections {
        println!("\n==================== {name} ====================");
        combined.merge(&f(&args).prefixed(name));
    }
    write_metrics(&args, &combined);
}
