//! Regenerates the SS V-C CSM comparison.
fn main() {
    instameasure_bench::figs::table_csm::run(&instameasure_bench::BenchArgs::parse());
}
