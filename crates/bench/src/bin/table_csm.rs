//! Regenerates the SS V-C CSM comparison.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::table_csm::run);
}
