//! Regenerates paper Fig. 10.
use instameasure_bench::figs::fig10_11::{run, Metric};
fn main() {
    run(&instameasure_bench::BenchArgs::parse(), Metric::Packets);
}
