//! Regenerates paper Fig. 14.
fn main() {
    instameasure_bench::figs::fig14::run(&instameasure_bench::BenchArgs::parse());
}
