//! Regenerates paper Fig. 14.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::fig14::run);
}
