//! Long-haul stress run: streams tens of millions of packets through the
//! single-core pipeline with O(flows) memory and checks throughput,
//! regulation and top-flow accuracy against analytic ground truth.
//!
//! ```text
//! cargo run --release -p instameasure-bench --bin stress [--scale F] [--seed N]
//! ```
//! `--scale 1.0` streams ~20M packets (a few seconds); scale up at will —
//! memory stays flat.

use std::time::Instant;

use instameasure_bench::{
    fmt_count, main_entry, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot,
};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_sketch::SketchConfig;
use instameasure_traffic::stream::{StreamConfig, StreamingTrace};
use instameasure_wsaf::WsafConfig;

fn main() {
    main_entry(run);
}

fn run(args: &BenchArgs) -> Snapshot {
    let cfg = StreamConfig {
        flows: (400_000.0 * args.scale) as usize,
        alpha: 1.05,
        max_flow_size: (1_500_000.0 * args.scale) as u64,
        duration_nanos: 60_000_000_000, // one virtual minute
        seed: args.seed,
    };
    let stream = StreamingTrace::new(cfg);
    let total = stream.total_packets();
    println!(
        "# stress: streaming {} packets / {} flows (one virtual minute)",
        fmt_count(total as f64),
        fmt_count(cfg.flows as f64)
    );

    let im_cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(args.seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(20).build().unwrap());
    let mut im = InstaMeasure::new(im_cfg);

    let start = Instant::now();
    for pkt in stream {
        im.process(&pkt);
    }
    let secs = start.elapsed().as_secs_f64();
    let mpps = total as f64 / secs / 1e6;
    let stats = im.regulator_stats();
    println!(
        "processed in {secs:.2}s -> {mpps:.2} Mpps; regulation {:.3}%; WSAF {} entries (load {:.3})",
        stats.regulation_rate() * 100.0,
        im.wsaf().len(),
        im.wsaf().load_factor()
    );

    // Accuracy against analytic truth on the top 20 flows.
    let probe = StreamingTrace::new(cfg);
    println!("rank\ttruth\test\trel_err");
    let mut worst: f64 = 0.0;
    for rank in 0..20usize {
        let key = probe.flow_key(rank);
        let truth = probe.flow_size(rank) as f64;
        let est = im.estimate_packets(&key);
        let rel = (est - truth).abs() / truth;
        worst = worst.max(rel);
        println!("{}\t{:.0}\t{:.0}\t{:.4}", rank + 1, truth, est, rel);
    }

    print_checks(
        "stress",
        &[
            PaperCheck {
                name: "sustained throughput".into(),
                paper: "18.9 Mpps single Atom core".into(),
                measured: format!("{mpps:.2} Mpps (host-dependent)"),
                holds: mpps > 1.0,
            },
            PaperCheck {
                name: "regulation at scale".into(),
                paper: "~1%".into(),
                measured: format!("{:.3}%", stats.regulation_rate() * 100.0),
                holds: stats.regulation_rate() < 0.05,
            },
            PaperCheck {
                name: "top-20 accuracy after tens of millions of packets".into(),
                paper: "sub-percent for 1000K+ flows".into(),
                measured: format!("worst {:.2}%", worst * 100.0),
                holds: worst < 0.10,
            },
        ],
    );

    let mut snap = im.telemetry();
    snap.set_gauge("fig.throughput_mpps", mpps);
    snap.set_gauge("fig.worst_top20_err", worst);
    snap
}
