//! Long-haul stress run: streams tens of millions of packets through the
//! single-core pipeline with O(flows) memory and checks throughput,
//! regulation and top-flow accuracy against analytic ground truth — then
//! pushes a second stream through the batched multi-core pipeline at batch
//! sizes 1/64/256/1024 so the dispatch-amortization speedup lands in the
//! metrics JSON.
//!
//! ```text
//! cargo run --release -p instameasure-bench --bin stress [--scale F] [--seed N]
//! ```
//! `--scale 1.0` streams ~20M packets (a few seconds); scale up at will —
//! memory stays flat.

use std::time::Instant;

use instameasure_bench::{
    fmt_count, main_entry, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot,
};
use instameasure_core::multicore::{run_multicore_stream, MultiCoreConfig};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_packet::chunk::{PcapChunkReader, RecordStream};
use instameasure_packet::pcap::{read_records, PcapWriter, TsResolution};
use instameasure_packet::synth::synthesize_frame;
use instameasure_sketch::SketchConfig;
use instameasure_traffic::stream::{StreamConfig, StreamingTrace};
use instameasure_wsaf::WsafConfig;

fn main() {
    main_entry(run);
}

fn run(args: &BenchArgs) -> Snapshot {
    let cfg = StreamConfig {
        flows: (400_000.0 * args.scale) as usize,
        alpha: 1.05,
        max_flow_size: (1_500_000.0 * args.scale) as u64,
        duration_nanos: 60_000_000_000, // one virtual minute
        seed: args.seed,
    };
    let stream = StreamingTrace::new(cfg);
    let total = stream.total_packets();
    println!(
        "# stress: streaming {} packets / {} flows (one virtual minute)",
        fmt_count(total as f64),
        fmt_count(cfg.flows as f64)
    );

    let im_cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(args.seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(20).build().unwrap());
    let mut im = InstaMeasure::new(im_cfg);

    let start = Instant::now();
    for pkt in stream {
        im.process(&pkt);
    }
    let secs = start.elapsed().as_secs_f64();
    let mpps = total as f64 / secs / 1e6;
    let stats = im.filter_stats();
    println!(
        "processed in {secs:.2}s -> {mpps:.2} Mpps; regulation {:.3}%; WSAF {} entries (load {:.3})",
        stats.regulation_rate() * 100.0,
        im.wsaf().len(),
        im.wsaf().load_factor()
    );

    // Accuracy against analytic truth on the top 20 flows.
    let probe = StreamingTrace::new(cfg);
    println!("rank\ttruth\test\trel_err");
    let mut worst: f64 = 0.0;
    for rank in 0..20usize {
        let key = probe.flow_key(rank);
        let truth = probe.flow_size(rank) as f64;
        let est = im.estimate_packets(&key);
        let rel = (est - truth).abs() / truth;
        worst = worst.max(rel);
        println!("{}\t{:.0}\t{:.0}\t{:.4}", rank + 1, truth, est, rel);
    }

    // Batched multi-core leg: the same streaming generator feeds the
    // manager/worker pipeline (O(batch × workers) manager memory — no
    // pre-loaded trace), swept over batch sizes so the dispatch
    // amortization is visible in the metrics JSON.
    let sweep_cfg = StreamConfig {
        flows: (60_000.0 * args.scale) as usize,
        alpha: 1.05,
        max_flow_size: (220_000.0 * args.scale) as u64,
        duration_nanos: 60_000_000_000,
        seed: args.seed,
    };
    let sweep_total = StreamingTrace::new(sweep_cfg).total_packets();
    println!(
        "\n# batched multicore ingest: {} packets / 4 workers, batch size sweep",
        fmt_count(sweep_total as f64)
    );
    println!("batch_size\tthroughput_mpps\tbatches_sent\tdropped");
    let mut batch_mpps = Vec::new();
    for batch_size in [1usize, 64, 256, 1024] {
        let mc = MultiCoreConfig::builder()
            .workers(4)
            .queue_capacity(8192)
            .batch_size(batch_size)
            .per_worker(im_cfg)
            .build()
            .unwrap();
        let (_, report) = run_multicore_stream(StreamingTrace::new(sweep_cfg), &mc);
        let batch_pps = report.throughput_pps / 1e6;
        println!("{batch_size}\t{batch_pps:.2}\t{}\t{}", report.batches_sent, report.dropped);
        batch_mpps.push(batch_pps);
    }

    // Zero-copy pcap leg: a fixed slice of the stream written to disk once,
    // then drained by the owned-buffer reader (the pre-zero-copy CLI path)
    // and by the mmap-backed chunk reader, so the ingest speedup shows up
    // in the metrics JSON next to the pipeline numbers.
    let pcap_packets = (1_000_000.0 * args.scale) as usize;
    let path =
        std::env::temp_dir().join(format!("instameasure_stress_{}.pcap", std::process::id()));
    {
        let out = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        let mut w = PcapWriter::new(out, TsResolution::Nano).unwrap();
        for pkt in StreamingTrace::new(sweep_cfg).take(pcap_packets) {
            w.write_packet(pkt.ts_nanos, &synthesize_frame(&pkt)).unwrap();
        }
        w.into_inner().unwrap().into_inner().unwrap();
    }
    let file_bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "\n# zero-copy pcap ingest: {} packets / {} MiB on disk",
        fmt_count(pcap_packets as f64),
        file_bytes >> 20
    );

    let start = Instant::now();
    let (owned_records, _) =
        read_records(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    let owned_mpps = owned_records.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
    drop(owned_records);

    let start = Instant::now();
    let mut zc_stream = RecordStream::new(PcapChunkReader::open(&path).unwrap());
    let mut zc_packets = 0u64;
    let mut zc_acc = 0u64;
    for rec in zc_stream.by_ref() {
        zc_packets += 1;
        zc_acc ^= u64::from(rec.key.src_port);
    }
    std::hint::black_box(zc_acc);
    let zc_mpps = zc_packets as f64 / start.elapsed().as_secs_f64() / 1e6;
    let (_, ingest_stats) = zc_stream.finish().unwrap();
    assert_eq!(zc_packets as usize, pcap_packets, "zero-copy drain lost packets");
    println!(
        "owned {owned_mpps:.2} Mpps vs zero-copy {zc_mpps:.2} Mpps ({} chunk fills, {} bytes mapped, {} copy fallbacks)",
        ingest_stats.chunk_fills, ingest_stats.bytes_mapped, ingest_stats.copy_fallbacks
    );
    std::fs::remove_file(&path).ok();

    print_checks(
        "stress",
        &[
            PaperCheck {
                name: "sustained throughput".into(),
                paper: "18.9 Mpps single Atom core".into(),
                measured: format!("{mpps:.2} Mpps (host-dependent)"),
                holds: mpps > 1.0,
            },
            PaperCheck {
                name: "regulation at scale".into(),
                paper: "~1%".into(),
                measured: format!("{:.3}%", stats.regulation_rate() * 100.0),
                holds: stats.regulation_rate() < 0.05,
            },
            PaperCheck {
                name: "top-20 accuracy after tens of millions of packets".into(),
                paper: "sub-percent for 1000K+ flows".into(),
                measured: format!("worst {:.2}%", worst * 100.0),
                holds: worst < 0.10,
            },
            PaperCheck {
                name: "batched dispatch speedup under streaming ingest".into(),
                paper: "per-packet queue ops dominate at batch 1".into(),
                measured: format!(
                    "batch 1 -> 256: {:.2} -> {:.2} Mpps",
                    batch_mpps[0], batch_mpps[2]
                ),
                holds: batch_mpps[2] > batch_mpps[0],
            },
            PaperCheck {
                name: "zero-copy pcap ingest keeps pace with owned reads".into(),
                paper: "line-rate ingest without per-packet allocation".into(),
                measured: format!("owned {owned_mpps:.2} vs zero-copy {zc_mpps:.2} Mpps"),
                // Allow scheduler noise, but a zero-copy path meaningfully
                // slower than the copying baseline is a regression.
                holds: zc_mpps >= 0.9 * owned_mpps,
            },
        ],
    );

    let mut snap = im.telemetry();
    snap.set_gauge("fig.throughput_mpps", mpps);
    snap.set_gauge("fig.worst_top20_err", worst);
    for (batch_size, batch_pps) in [1usize, 64, 256, 1024].into_iter().zip(&batch_mpps) {
        snap.set_gauge(format!("fig.batch{batch_size}_mpps"), *batch_pps);
    }
    snap.set_gauge("fig.ingest_owned_mpps", owned_mpps);
    snap.set_gauge("fig.ingest_zerocopy_mpps", zc_mpps);
    snap.set_gauge("fig.ingest_chunk_fills", ingest_stats.chunk_fills as f64);
    snap.set_gauge("fig.ingest_copy_fallbacks", ingest_stats.copy_fallbacks as f64);
    snap
}
