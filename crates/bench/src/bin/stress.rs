//! Long-haul stress run: streams tens of millions of packets through the
//! single-core pipeline with O(flows) memory and checks throughput,
//! regulation and top-flow accuracy against analytic ground truth — then
//! pushes a second stream through the batched multi-core pipeline at batch
//! sizes 1/64/256/1024 so the dispatch-amortization speedup lands in the
//! metrics JSON.
//!
//! ```text
//! cargo run --release -p instameasure-bench --bin stress [--scale F] [--seed N]
//! ```
//! `--scale 1.0` streams ~20M packets (a few seconds); scale up at will —
//! memory stays flat.

use std::time::Instant;

use instameasure_bench::{
    fmt_count, main_entry, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot,
};
use instameasure_core::multicore::{run_multicore_stream, MultiCoreConfig};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_sketch::SketchConfig;
use instameasure_traffic::stream::{StreamConfig, StreamingTrace};
use instameasure_wsaf::WsafConfig;

fn main() {
    main_entry(run);
}

fn run(args: &BenchArgs) -> Snapshot {
    let cfg = StreamConfig {
        flows: (400_000.0 * args.scale) as usize,
        alpha: 1.05,
        max_flow_size: (1_500_000.0 * args.scale) as u64,
        duration_nanos: 60_000_000_000, // one virtual minute
        seed: args.seed,
    };
    let stream = StreamingTrace::new(cfg);
    let total = stream.total_packets();
    println!(
        "# stress: streaming {} packets / {} flows (one virtual minute)",
        fmt_count(total as f64),
        fmt_count(cfg.flows as f64)
    );

    let im_cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(args.seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(20).build().unwrap());
    let mut im = InstaMeasure::new(im_cfg);

    let start = Instant::now();
    for pkt in stream {
        im.process(&pkt);
    }
    let secs = start.elapsed().as_secs_f64();
    let mpps = total as f64 / secs / 1e6;
    let stats = im.regulator_stats();
    println!(
        "processed in {secs:.2}s -> {mpps:.2} Mpps; regulation {:.3}%; WSAF {} entries (load {:.3})",
        stats.regulation_rate() * 100.0,
        im.wsaf().len(),
        im.wsaf().load_factor()
    );

    // Accuracy against analytic truth on the top 20 flows.
    let probe = StreamingTrace::new(cfg);
    println!("rank\ttruth\test\trel_err");
    let mut worst: f64 = 0.0;
    for rank in 0..20usize {
        let key = probe.flow_key(rank);
        let truth = probe.flow_size(rank) as f64;
        let est = im.estimate_packets(&key);
        let rel = (est - truth).abs() / truth;
        worst = worst.max(rel);
        println!("{}\t{:.0}\t{:.0}\t{:.4}", rank + 1, truth, est, rel);
    }

    // Batched multi-core leg: the same streaming generator feeds the
    // manager/worker pipeline (O(batch × workers) manager memory — no
    // pre-loaded trace), swept over batch sizes so the dispatch
    // amortization is visible in the metrics JSON.
    let sweep_cfg = StreamConfig {
        flows: (60_000.0 * args.scale) as usize,
        alpha: 1.05,
        max_flow_size: (220_000.0 * args.scale) as u64,
        duration_nanos: 60_000_000_000,
        seed: args.seed,
    };
    let sweep_total = StreamingTrace::new(sweep_cfg).total_packets();
    println!(
        "\n# batched multicore ingest: {} packets / 4 workers, batch size sweep",
        fmt_count(sweep_total as f64)
    );
    println!("batch_size\tthroughput_mpps\tbatches_sent\tdropped");
    let mut batch_mpps = Vec::new();
    for batch_size in [1usize, 64, 256, 1024] {
        let mc = MultiCoreConfig::builder()
            .workers(4)
            .queue_capacity(8192)
            .batch_size(batch_size)
            .per_worker(im_cfg)
            .build()
            .unwrap();
        let (_, report) = run_multicore_stream(StreamingTrace::new(sweep_cfg), &mc);
        let batch_pps = report.throughput_pps / 1e6;
        println!("{batch_size}\t{batch_pps:.2}\t{}\t{}", report.batches_sent, report.dropped);
        batch_mpps.push(batch_pps);
    }

    print_checks(
        "stress",
        &[
            PaperCheck {
                name: "sustained throughput".into(),
                paper: "18.9 Mpps single Atom core".into(),
                measured: format!("{mpps:.2} Mpps (host-dependent)"),
                holds: mpps > 1.0,
            },
            PaperCheck {
                name: "regulation at scale".into(),
                paper: "~1%".into(),
                measured: format!("{:.3}%", stats.regulation_rate() * 100.0),
                holds: stats.regulation_rate() < 0.05,
            },
            PaperCheck {
                name: "top-20 accuracy after tens of millions of packets".into(),
                paper: "sub-percent for 1000K+ flows".into(),
                measured: format!("worst {:.2}%", worst * 100.0),
                holds: worst < 0.10,
            },
            PaperCheck {
                name: "batched dispatch speedup under streaming ingest".into(),
                paper: "per-packet queue ops dominate at batch 1".into(),
                measured: format!(
                    "batch 1 -> 256: {:.2} -> {:.2} Mpps",
                    batch_mpps[0], batch_mpps[2]
                ),
                holds: batch_mpps[2] > batch_mpps[0],
            },
        ],
    );

    let mut snap = im.telemetry();
    snap.set_gauge("fig.throughput_mpps", mpps);
    snap.set_gauge("fig.worst_top20_err", worst);
    for (batch_size, batch_pps) in [1usize, 64, 256, 1024].into_iter().zip(&batch_mpps) {
        snap.set_gauge(format!("fig.batch{batch_size}_mpps"), *batch_pps);
    }
    snap
}
