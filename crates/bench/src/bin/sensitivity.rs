//! Workload-sensitivity sweep of the regulation/accuracy headline.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::sensitivity::run);
}
