//! Workload-sensitivity sweep of the regulation/accuracy headline.
fn main() {
    instameasure_bench::figs::sensitivity::run(&instameasure_bench::BenchArgs::parse());
}
