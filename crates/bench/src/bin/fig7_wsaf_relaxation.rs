//! Regenerates paper Fig. 7.
fn main() {
    instameasure_bench::figs::fig7::run(&instameasure_bench::BenchArgs::parse());
}
