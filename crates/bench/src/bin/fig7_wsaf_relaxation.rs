//! Regenerates paper Fig. 7.
fn main() {
    instameasure_bench::main_entry(instameasure_bench::figs::fig7::run);
}
