//! Figs. 10 & 11 — packet/byte counting accuracy vs sketch memory, by
//! flow-size bucket, plus Top-K recall.
//!
//! Paper (128 KB, packets): 0.56% error for 1000K+ flows, 1.54% for 100K+,
//! 3.48% for 10K+; errors fall as memory grows; byte errors mirror packet
//! errors; Top-K recall mostly above 95%. Our trace is a scaled CAIDA
//! stand-in, so the buckets scale identically (see DESIGN.md).

use instameasure_core::metrics::{error_by_bucket, paper_packet_buckets, top_k_recall};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_sketch::SketchConfig;
use instameasure_traffic::presets::caida_like;
use instameasure_traffic::Trace;
use instameasure_wsaf::WsafConfig;

use crate::{fmt_count, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot};

/// Which counter the figure evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fig. 10: packet counter.
    Packets,
    /// Fig. 11: byte counter.
    Bytes,
}

fn run_one_memory(
    trace: &Trace,
    l1_bytes: usize,
    seed: u64,
    metric: Metric,
    bucket_scale: f64,
) -> (Vec<Option<f64>>, f64, f64, Snapshot) {
    let cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(l1_bytes)
                .vector_bits(8)
                .seed(seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(20).build().unwrap());
    let mut im = InstaMeasure::new(cfg);
    for r in &trace.records {
        im.process(r);
    }

    let buckets = paper_packet_buckets(bucket_scale);
    let flows: Vec<_> = match metric {
        Metric::Packets => trace.stats.truth.packets.iter().map(|(k, &v)| (*k, v)).collect(),
        Metric::Bytes => trace.stats.truth.bytes.iter().map(|(k, &v)| (*k, v)).collect(),
    };
    // Byte buckets are anchored independently on the largest *byte* flow
    // (per-flow length profiles decouple the byte and packet rankings):
    // the paper's 1GB+ bucket sits just under its largest flow's volume.
    let buckets = if metric == Metric::Bytes {
        let max_bytes = trace.stats.truth.bytes.values().max().copied().unwrap_or(1) as f64;
        let s = |v: f64| ((v * max_bytes / 1.2e9) as u64).max(1);
        let mut b = buckets;
        b[0].min = s(1e7);
        b[0].max = s(1e8);
        b[1].min = s(1e8);
        b[1].max = s(1e9);
        b[2].min = s(1e9);
        b
    } else {
        buckets
    };

    let errs = error_by_bucket(&flows, &buckets, |k| match metric {
        Metric::Packets => im.estimate_packets(k),
        Metric::Bytes => im.estimate_bytes(k),
    });

    // Top-K recall. K is a *fraction* of the flow population: the
    // paper's deepest list (top-1M of 78M flows) is its top 1.3%.
    let recall = |k: usize| -> f64 {
        let truth: Vec<_> = trace
            .stats
            .truth
            .top_k(k, metric == Metric::Bytes)
            .into_iter()
            .map(|(key, _)| key)
            .collect();
        let measured: Vec<_> = match metric {
            Metric::Packets => im.wsaf().top_k_by_packets(k).into_iter().map(|e| e.key).collect(),
            Metric::Bytes => im.wsaf().top_k_by_bytes(k).into_iter().map(|e| e.key).collect(),
        };
        top_k_recall(&measured, &truth)
    };
    let flows_total = trace.stats.flows;
    let k_small = (flows_total / 500).max(10); // ~ paper's top-100K depth
    let k_large = (flows_total / 77).max(20); // ~ paper's top-1M depth (1.3%)
    (errs, recall(k_small), recall(k_large), im.telemetry())
}

/// Runs the Fig. 10 (packets) or Fig. 11 (bytes) experiment.
pub fn run(args: &BenchArgs, metric: Metric) -> Snapshot {
    let fig = if metric == Metric::Packets { "Fig 10" } else { "Fig 11" };
    let trace = caida_like(0.08 * args.scale, args.seed);
    // Anchor the size buckets on the head of the distribution: the
    // paper's 1000K+ bucket sits ~1.2x under its largest CAIDA flow, so
    // scaling by max_flow/1.2e6 puts our buckets at the same relative
    // depth of the Zipf curve.
    let max_flow = trace.stats.truth.packets.values().max().copied().unwrap_or(1);
    let bucket_scale = max_flow as f64 / 1.2e6;
    println!("# {fig}: accuracy vs L1 memory ({:?})", metric);
    println!(
        "# trace: {} packets, {} flows; buckets scaled by {:.2e}",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64),
        bucket_scale
    );
    println!("l1_kb\terr_10K+\terr_100K+\terr_1000K+\trecall_top0.2pct\trecall_top1.3pct");

    let mut err_small_by_mem = Vec::new();
    let mut err_mid_by_mem = Vec::new();
    let mut recall100_at_max = 0.0;
    let mut snap = Snapshot::new();
    // The paper sweeps 32-512 KB against 78M flows; our flow count is
    // ~500x smaller, so the equivalent sketch-load regime starts lower —
    // the 2-8 KB points carry the paper's 32-128 KB contention level.
    for l1_kb in [2usize, 8, 32, 128, 512] {
        let (errs, r100, r1000, telemetry) =
            run_one_memory(&trace, l1_kb * 1024, args.seed, metric, bucket_scale);
        if l1_kb == 512 {
            snap = telemetry; // keep the deepest memory point's system view
        }
        let f = |o: Option<f64>| o.map_or("-".to_string(), |e| format!("{:.4}", e));
        println!("{l1_kb}\t{}\t{}\t{}\t{r100:.3}\t{r1000:.3}", f(errs[0]), f(errs[1]), f(errs[2]));
        if let Some(e) = errs[0] {
            err_small_by_mem.push((l1_kb, e));
        }
        if let Some(e) = errs[1] {
            err_mid_by_mem.push((l1_kb, e));
        }
        recall100_at_max = r100;
    }

    let err_first = err_small_by_mem.first().map_or(f64::NAN, |&(_, e)| e);
    let err_last = err_small_by_mem.last().map_or(f64::NAN, |&(_, e)| e);
    // The middle (100K+-equivalent) bucket is the best-sampled one at our
    // scale: its flows run tens of saturation cycles, like every bucket
    // does at the paper's trace size.
    let err_mid = err_mid_by_mem.last().map_or(f64::NAN, |&(_, e)| e);
    print_checks(
        &fig.to_lowercase().replace(' ', ""),
        &[
            PaperCheck {
                name: "error falls as memory grows (10K+ bucket)".into(),
                paper: "3.48% @128KB -> 1.76% @2048KB".into(),
                measured: format!(
                    "{:.2}% @2KB -> {:.2}% @512KB",
                    err_first * 100.0,
                    err_last * 100.0
                ),
                holds: err_last <= err_first,
            },
            PaperCheck {
                name: "well-sampled buckets err in low single digits".into(),
                paper: "0.19%-3.48% depending on bucket".into(),
                measured: format!("{:.2}% (100K+-equivalent bucket)", err_mid * 100.0),
                holds: err_mid < 0.08,
            },
            PaperCheck {
                name: "Top-K recall (0.2% depth ~ paper top-100K)".into(),
                paper: "mostly > 95%".into(),
                measured: format!("{:.1}%", recall100_at_max * 100.0),
                holds: recall100_at_max > 0.90,
            },
        ],
    );

    snap.set_gauge("fig.err_smallest_bucket", err_last);
    snap.set_gauge("fig.err_mid_bucket", err_mid);
    snap.set_gauge("fig.topk_recall", recall100_at_max);
    snap
}
