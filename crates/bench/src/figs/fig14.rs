//! Fig. 14 — heavy-hitter detection false-positive/negative rates on the
//! campus capture, for packet and byte heavy hitters.
//!
//! Paper: false negatives negligible in both cases; false positives
//! < 0.1% (packets) and < 0.2% (bytes).

use std::collections::HashMap;

use instameasure_core::heavy_hitter::{HeavyHitterDetector, HhMetric};
use instameasure_core::InstaMeasureConfig;
use instameasure_packet::FlowKey;
use instameasure_sketch::SketchConfig;
use instameasure_traffic::presets::campus_like;
use instameasure_wsaf::WsafConfig;

use crate::{fmt_count, print_checks, BenchArgs, PaperCheck, Snapshot};

/// Runs the Fig. 14 experiment: sweep the heavy-hitter threshold and
/// report FP/FN rates for both metrics.
pub fn run(args: &BenchArgs) -> Snapshot {
    let trace = campus_like(0.08 * args.scale, args.seed);
    println!("# Fig 14: heavy-hitter detection FP/FN rates");
    println!(
        "# trace: {} packets, {} flows",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64)
    );
    let cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(args.seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(20).build().unwrap());

    println!("metric\tthreshold\ttrue_hh\tdetected\tfp_rate\tfn_rate");
    let mut worst_fp: f64 = 0.0;
    let mut worst_fn: f64 = 0.0;

    // Thresholds as fractions of total volume (the paper uses a fraction
    // of link capacity). They must sit above the FlowRegulator's
    // retention capacity (~100 packets / ~retention x MTU bytes):
    // below it, flows legitimately never leave the sketch, so a WSAF
    // detector cannot see them — the paper's 0.05%-of-capacity thresholds
    // are orders of magnitude above retention.
    let min_pkt_threshold = 400.0;
    let min_byte_threshold = 400.0 * 1514.0;
    for frac in [0.002f64, 0.004, 0.008] {
        for metric in [HhMetric::Packets, HhMetric::Bytes] {
            let (threshold, truth): (f64, HashMap<FlowKey, f64>) = match metric {
                HhMetric::Packets => (
                    (trace.stats.packets as f64 * frac).max(min_pkt_threshold),
                    trace.stats.truth.packets.iter().map(|(k, &v)| (*k, v as f64)).collect(),
                ),
                HhMetric::Bytes => (
                    (trace.stats.bytes as f64 * frac).max(min_byte_threshold),
                    trace.stats.truth.bytes.iter().map(|(k, &v)| (*k, v as f64)).collect(),
                ),
            };
            let mut det = HeavyHitterDetector::new(cfg, metric, threshold);
            for r in &trace.records {
                det.process(r);
            }
            det.finalize();
            // 10% borderline band: flows on the threshold are classified
            // by estimator noise, not design (see HeavyHitterDetector docs).
            let rates = det.evaluate_with_margin(&truth, trace.stats.flows, 0.10);
            println!(
                "{}\t{:.0}\t{}\t{}\t{:.5}\t{:.5}",
                if metric == HhMetric::Packets { "packets" } else { "bytes" },
                threshold,
                rates.positives,
                det.detections().len(),
                rates.false_positive,
                rates.false_negative
            );
            worst_fp = worst_fp.max(rates.false_positive);
            worst_fn = worst_fn.max(rates.false_negative);
        }
    }

    print_checks(
        "fig14",
        &[
            PaperCheck {
                name: "false-positive rate".into(),
                paper: "< 0.1% (pkts) / < 0.2% (bytes)".into(),
                measured: format!("worst {:.3}%", worst_fp * 100.0),
                holds: worst_fp < 0.005,
            },
            PaperCheck {
                name: "false-negative rate".into(),
                paper: "negligible".into(),
                measured: format!("worst {:.3}%", worst_fn * 100.0),
                holds: worst_fn < 0.05,
            },
        ],
    );

    let mut snap = Snapshot::new();
    snap.set_gauge("fig.worst_fp_rate", worst_fp);
    snap.set_gauge("fig.worst_fn_rate", worst_fn);
    snap
}
