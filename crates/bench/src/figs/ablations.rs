//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! Not a paper figure — these quantify *why* the paper's design decisions
//! matter by toggling each one:
//!
//! A. number of layers (1 = RCC … 4; the paper's TCAM-margin extension)
//! B. per-noise-class L2 counters vs one shared L2
//! C. hash reuse across layers vs independent L2 hashing
//! D. WSAF probe limit
//! E. WSAF eviction policy (second-chance vs min-packets vs oldest)
//! F. WSAF organization: per-worker shards vs a lock-striped shared table

use std::collections::HashMap;

use instameasure_packet::FlowKey;
use instameasure_sketch::{
    FlowFilter, FlowRegulator, FlowRegulatorOptions, MultiLayerRegulator, SketchConfig,
};
use instameasure_traffic::presets::caida_like;
use instameasure_traffic::Trace;
use instameasure_wsaf::{EvictionPolicy, WsafConfig, WsafTable};

use crate::{fmt_count, BenchArgs, Instrumented, Snapshot};

/// Mean relative error over the trace's elephants for any regulator.
fn elephant_error(reg: &mut dyn FlowFilter, trace: &Trace, min_size: u64) -> f64 {
    let mut released: HashMap<FlowKey, f64> = HashMap::new();
    for r in &trace.records {
        if let Some(u) = reg.process(r) {
            *released.entry(u.key).or_insert(0.0) += u.est_pkts;
        }
    }
    let flows = trace.stats.truth.flows_at_least(min_size);
    let mut err = 0.0;
    for (key, truth) in &flows {
        let est = released.get(key).copied().unwrap_or(0.0) + reg.residual_packets(key);
        err += (est - *truth as f64).abs() / *truth as f64;
    }
    err / flows.len().max(1) as f64
}

fn sketch_cfg(seed: u64) -> SketchConfig {
    SketchConfig::builder().memory_bytes(8 * 1024).vector_bits(8).seed(seed).build().unwrap()
}

fn study_layers(trace: &Trace, min_size: u64, seed: u64) {
    println!("# A. layer count (8 KB/layer): regulation rate vs accuracy");
    println!("layers\tregulation\tretention_model\telephant_err\tmemory_kb");
    for layers in 1..=4u32 {
        let mut reg = MultiLayerRegulator::new(sketch_cfg(seed), layers);
        let err = elephant_error(&mut reg, trace, min_size);
        println!(
            "{layers}\t{:.5}\t{:.0}\t{:.4}\t{}",
            reg.stats().regulation_rate(),
            reg.model_retention(),
            err,
            reg.memory_bytes() / 1024
        );
    }
}

fn study_classes(trace: &Trace, min_size: u64, seed: u64) {
    println!("# B. per-class L2 vs shared L2");
    println!("design\tregulation\telephant_err\tmemory_kb");
    for (name, shared) in [("per_class", false), ("shared", true)] {
        let mut reg = FlowRegulator::with_options(
            sketch_cfg(seed),
            FlowRegulatorOptions { shared_l2: shared, ..Default::default() },
        );
        let err = elephant_error(&mut reg, trace, min_size);
        println!(
            "{name}\t{:.5}\t{:.4}\t{}",
            reg.stats().regulation_rate(),
            err,
            reg.memory_bytes() / 1024
        );
    }
}

fn study_hash_reuse(trace: &Trace, min_size: u64, seed: u64) {
    println!("# C. hash reuse vs independent L2 hash");
    println!("design\thashes_per_pkt\telephant_err");
    for (name, indep) in [("reuse", false), ("independent", true)] {
        let mut reg = FlowRegulator::with_options(
            sketch_cfg(seed),
            FlowRegulatorOptions { independent_l2_hash: indep, ..Default::default() },
        );
        let err = elephant_error(&mut reg, trace, min_size);
        let s = reg.stats();
        println!("{name}\t{:.4}\t{:.4}", s.hashes as f64 / s.packets as f64, err);
    }
}

fn study_probe_limit(trace: &Trace, seed: u64) {
    println!("# D. WSAF probe limit (2^9-entry table, overloaded on purpose)");
    println!("probe_limit\tfinal_entries\tload_factor\tprobes_per_op");
    for probe in [4usize, 8, 16, 32, 64] {
        let mut table = WsafTable::new(
            WsafConfig::builder()
                .entries_log2(9)
                .probe_limit(probe)
                .expiry_nanos(u64::MAX / 2)
                .seed(seed)
                .build()
                .unwrap(),
        );
        let mut reg = FlowRegulator::new(sketch_cfg(seed));
        for r in &trace.records {
            if let Some(u) = reg.process(r) {
                table.accumulate(&u.key, u.est_pkts, u.est_bytes, u.ts_nanos);
            }
        }
        println!(
            "{probe}\t{}\t{:.3}\t{:.2}",
            table.len(),
            table.load_factor(),
            table.stats().probes_per_op()
        );
    }
}

fn study_eviction(trace: &Trace, seed: u64) {
    println!("# E. WSAF eviction policy under overload: true-top-100 retention");
    println!("policy\ttop100_retained\tevictions");
    let truth_top: Vec<FlowKey> =
        trace.stats.truth.top_k(100, false).into_iter().map(|(k, _)| k).collect();
    for (name, policy) in [
        ("second_chance", EvictionPolicy::SecondChance),
        ("min_packets", EvictionPolicy::MinPackets),
        ("oldest", EvictionPolicy::Oldest),
    ] {
        let mut table = WsafTable::new(
            WsafConfig::builder()
                .entries_log2(9) // 512 entries — heavy overload
                .probe_limit(16)
                .expiry_nanos(u64::MAX / 2)
                .eviction(policy)
                .seed(seed)
                .build()
                .unwrap(),
        );
        let mut reg = FlowRegulator::new(sketch_cfg(seed));
        for r in &trace.records {
            if let Some(u) = reg.process(r) {
                table.accumulate(&u.key, u.est_pkts, u.est_bytes, u.ts_nanos);
            }
        }
        let retained = truth_top.iter().filter(|k| table.get(k).is_some()).count();
        println!("{name}\t{retained}\t{}", table.stats().evictions);
    }
}

fn study_shared_vs_sharded(trace: &Trace, seed: u64) -> Snapshot {
    use instameasure_core::multicore::{run_multicore, MultiCoreConfig};
    use instameasure_core::shared_wsaf::StripedWsaf;
    use instameasure_core::InstaMeasureConfig;
    use std::time::Instant;

    println!("# F. WSAF organization under 4 workers: per-worker shards vs striped shared table");
    println!("design	throughput_mpps	top10_hits");
    let truth_top: Vec<FlowKey> =
        trace.stats.truth.top_k(10, false).into_iter().map(|(k, _)| k).collect();

    // Sharded (the paper's design): run_multicore.
    let cfg = MultiCoreConfig::builder()
        .workers(4)
        .queue_capacity(8192)
        .per_worker(
            InstaMeasureConfig::default()
                .with_sketch(sketch_cfg(seed))
                .with_wsaf(WsafConfig::builder().entries_log2(16).build().unwrap()),
        )
        .build()
        .unwrap();
    let (sys, report) = run_multicore(&trace.records, &cfg);
    let sharded_top: Vec<FlowKey> = sys.top_k_by_packets(10).into_iter().map(|(k, _)| k).collect();
    let sharded_hits = truth_top.iter().filter(|k| sharded_top.contains(k)).count();
    println!("sharded	{:.2}	{sharded_hits}", report.throughput_pps / 1e6);

    // Striped shared table: same dispatch, workers share one WSAF.
    let shared =
        StripedWsaf::new(WsafConfig::builder().entries_log2(18).build().unwrap(), 4).unwrap();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..4usize {
            let shared = &shared;
            let records = &trace.records;
            scope.spawn(move || {
                let mut fr = FlowRegulator::new(sketch_cfg(seed ^ w as u64));
                for r in records {
                    if instameasure_core::multicore::worker_for(&r.key, 4) == w {
                        if let Some(u) = fr.process(r) {
                            shared.accumulate(&u.key, u.est_pkts, u.est_bytes, u.ts_nanos);
                        }
                    }
                }
            });
        }
    });
    let striped_mpps = trace.records.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
    let striped_top: Vec<FlowKey> =
        shared.top_k_by_packets(10).into_iter().map(|e| e.key).collect();
    let striped_hits = truth_top.iter().filter(|k| striped_top.contains(k)).count();
    println!("striped	{striped_mpps:.2}	{striped_hits}");
    println!(
        "# (single global namespace vs partitioned; wall-clock comparison needs >= 4 host cores)"
    );

    // Study F is the one that exercises full systems, so its telemetry is
    // the interesting --metrics-json payload: the sharded run's merged
    // per-worker counters plus the striped table's merged stripe stats.
    let mut snap = report.telemetry.clone();
    snap.merge(&sys.telemetry().prefixed("sharded"));
    snap.merge(&shared.telemetry().prefixed("striped"));
    snap.set_gauge("fig.sharded_top10_hits", sharded_hits as f64);
    snap.set_gauge("fig.striped_top10_hits", striped_hits as f64);
    snap
}

/// Runs all ablation studies.
pub fn run(args: &BenchArgs) -> Snapshot {
    let trace = caida_like(0.1 * args.scale, args.seed);
    let min_size = 500;
    println!(
        "# Ablations on a {}-packet / {}-flow CAIDA-like trace; elephants = flows >= {min_size} pkts",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64)
    );
    study_layers(&trace, min_size, args.seed);
    study_classes(&trace, min_size, args.seed);
    study_hash_reuse(&trace, min_size, args.seed);
    study_probe_limit(&trace, args.seed);
    study_eviction(&trace, args.seed);
    study_shared_vs_sharded(&trace, args.seed)
}
