//! Delegation vs InstaMeasure overhead comparison (extends Fig. 9b with
//! the paper's §I network-congestion argument: "remote decoding
//! undoubtedly increases the network congestion").
//!
//! For a sweep of collection epochs, the conventional delegation design
//! ships sketch memory plus the flow-ID log every epoch and detects at
//! the collector; InstaMeasure ships nothing during measurement and
//! detects in-switch on saturation.

use instameasure_baselines::CsmConfig;
use instameasure_core::collector::{CollectorLink, DelegatedDevice};
use instameasure_core::latency::{compare_detection_latency, DelegationParams};
use instameasure_core::InstaMeasureConfig;
use instameasure_sketch::SketchConfig;
use instameasure_traffic::attack::{attacker_key, constant_rate_flow};
use instameasure_traffic::{merge_records, SyntheticTraceBuilder};
use instameasure_wsaf::WsafConfig;

use crate::{fmt_count, print_checks, BenchArgs, PaperCheck, Snapshot};

/// Runs the overhead comparison.
pub fn run(args: &BenchArgs) -> Snapshot {
    println!("# Delegation vs InstaMeasure: detection latency and network overhead");
    let background = SyntheticTraceBuilder::new()
        .num_flows((5_000.0 * args.scale) as usize)
        .max_flow_size(2_000)
        .duration_secs(2.0)
        .seed(args.seed)
        .build()
        .records;
    let attack = constant_rate_flow(attacker_key(1), 100_000, 64, 0, 2_000_000_000);
    let records = merge_records(vec![background, attack]);
    let threshold = 500.0;
    println!(
        "# workload: {} packets over 2 s; 100 kpps attacker; threshold {threshold} pkts",
        fmt_count(records.len() as f64)
    );

    // InstaMeasure: in-switch, zero export traffic during measurement.
    let im_cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(args.seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(16).build().unwrap());
    let im_cmp = compare_detection_latency(
        &records,
        &attacker_key(1),
        threshold,
        im_cfg,
        DelegationParams::default(),
    );
    let im_delay_ms = im_cmp.saturation_delay_nanos().map_or(f64::NAN, |d| d as f64 / 1e6);

    println!("design\tepoch_ms\tdetect_delay_ms\tbytes_shipped\tmean_bw_mbps");
    println!("instameasure\t-\t{im_delay_ms:.3}\t0\t0.00");

    let mut worst_deleg_delay = 0.0f64;
    let mut min_bytes = usize::MAX;
    for epoch_ms in [10u64, 20, 50, 100] {
        let mut dev = DelegatedDevice::new(
            CsmConfig { num_counters: 1 << 18, vector_len: 200, seed: args.seed },
            CollectorLink::default(),
            epoch_ms * 1_000_000,
        );
        dev.arm_detection(attacker_key(1), threshold);
        for r in &records {
            dev.process(r);
        }
        let truth = im_cmp.truth_crossing.unwrap_or(0);
        let report = dev.finish();
        let delay_ms = report.detection.map_or(f64::NAN, |d| d.saturating_sub(truth) as f64 / 1e6);
        let mbps = report.mean_bandwidth() * 8.0 / 1e6;
        println!("delegation\t{epoch_ms}\t{delay_ms:.3}\t{}\t{mbps:.2}", report.total_bytes());
        worst_deleg_delay = worst_deleg_delay.max(delay_ms);
        min_bytes = min_bytes.min(report.total_bytes());
    }

    print_checks(
        "overhead",
        &[
            PaperCheck {
                name: "InstaMeasure detects in-switch within ms".into(),
                paper: "<10 ms, no collector".into(),
                measured: format!("{im_delay_ms:.2} ms, 0 bytes shipped"),
                holds: im_delay_ms < 10.0,
            },
            PaperCheck {
                name: "delegation pays tens of ms and real bandwidth".into(),
                paper: "tens of ms + per-epoch sketch shipping".into(),
                measured: format!(
                    "up to {worst_deleg_delay:.1} ms, >= {} shipped",
                    fmt_count(min_bytes as f64)
                ),
                holds: worst_deleg_delay > 10.0 && min_bytes > 100_000,
            },
        ],
    );

    let mut snap = Snapshot::new();
    snap.set_gauge("fig.im_detect_delay_ms", im_delay_ms);
    snap.set_gauge("fig.worst_deleg_delay_ms", worst_deleg_delay);
    snap.set_counter("fig.min_deleg_bytes_shipped", min_bytes as u64);
    snap
}
