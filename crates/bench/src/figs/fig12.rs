//! Fig. 12 — monitoring in the wild: traffic volume, CPU load proxy and
//! queue occupancy over the 113-hour campus capture (compressed timeline).

use std::time::Instant;

use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_sketch::SketchConfig;
use instameasure_traffic::presets::campus_like;
use instameasure_wsaf::WsafConfig;

use crate::{fmt_count, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot};

/// Runs the Fig. 12 experiment: replay the campus-like trace hour by hour
/// and report per-hour traffic, a CPU-load proxy (busy time over the
/// virtual-hour wall time a real deployment would have) and WSAF
/// occupancy.
pub fn run(args: &BenchArgs) -> Snapshot {
    let trace = campus_like(0.08 * args.scale, args.seed);
    let virtual_hour = 100_000_000u64; // matches the preset's compression
    println!("# Fig 12: monitoring in the wild (113 compressed hours)");
    println!(
        "# trace: {} packets, {} flows",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64)
    );
    // The paper's device: single core, 128 KB sketch, 2^20-entry WSAF.
    let cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(args.seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(
            WsafConfig::builder().entries_log2(20).expiry_nanos(4 * virtual_hour).build().unwrap(),
        );
    let mut im = InstaMeasure::new(cfg);

    println!("hour\tpackets\tcpu_pct_proxy\twsaf_entries\twsaf_load");
    let mut hour = 0u64;
    let mut hour_pkts = 0u64;
    let mut hour_busy = 0u64;
    let mut busy_total = 0u64;
    let mut peak_cpu: f64 = 0.0;
    let mut max_load: f64 = 0.0;
    let mut rows = 0u32;
    let flush = |hour: u64, pkts: u64, busy: u64, im: &InstaMeasure| {
        // CPU proxy: fraction of the virtual hour the core spent busy.
        // The compressed timeline makes the proxy optimistic in absolute
        // terms; the *shape* (diurnal swing, never saturating) is the
        // reproduced claim.
        let cpu = busy as f64 / virtual_hour as f64 * 100.0;
        println!("{hour}\t{pkts}\t{cpu:.1}\t{}\t{:.3}", im.wsaf().len(), im.wsaf().load_factor());
        cpu
    };
    for r in &trace.records {
        let h = r.ts_nanos / virtual_hour;
        if h != hour {
            let cpu = flush(hour, hour_pkts, hour_busy, &im);
            peak_cpu = peak_cpu.max(cpu);
            max_load = max_load.max(im.wsaf().load_factor());
            rows += 1;
            hour = h;
            hour_pkts = 0;
            hour_busy = 0;
        }
        let t0 = Instant::now();
        im.process(r);
        let spent = t0.elapsed().as_nanos() as u64;
        hour_busy += spent;
        busy_total += spent;
        hour_pkts += 1;
    }
    let cpu = flush(hour, hour_pkts, hour_busy, &im);
    peak_cpu = peak_cpu.max(cpu);
    max_load = max_load.max(im.wsaf().load_factor());
    rows += 1;

    // Queue panel (paper Fig. 12c): the paper's queue stays small because
    // packets arrive at line pace while the worker consumes faster. A
    // live two-thread replay cannot be scheduled faithfully on a 1-core
    // host, so we run the exact single-server queue recurrence instead:
    // service time is the *measured* per-packet cost from the replay
    // above, arrivals are the trace timestamps.
    let total_busy: u64 = busy_total;
    let service_nanos = total_busy as f64 / trace.stats.packets as f64;
    let mut by_hour = vec![0usize; 114];
    let mut completion = 0.0f64; // when the worker finishes the last packet
    for r in &trace.records {
        let ts = r.ts_nanos as f64;
        completion = completion.max(ts) + service_nanos;
        // Packets in system while this one waits = backlog / service time.
        let qlen = ((completion - ts) / service_nanos).max(0.0) as usize;
        let h = (r.ts_nanos / virtual_hour) as usize;
        if h < by_hour.len() {
            by_hour[h] = by_hour[h].max(qlen);
        }
    }
    println!(
        "# queue occupancy per virtual hour (single-server recurrence, measured service {:.0} ns/pkt)",
        service_nanos
    );
    println!("hour\tmax_queue");
    let mut peak_queue = 0usize;
    for (h, &q) in by_hour.iter().enumerate() {
        if h % 8 == 0 || q > 8 {
            println!("{h}\t{q}");
        }
        peak_queue = peak_queue.max(q);
    }

    print_checks(
        "fig12",
        &[
            PaperCheck {
                name: "long-horizon run completes autonomously".into(),
                paper: "113 h uninterrupted".into(),
                measured: format!("{rows} virtual hours replayed"),
                holds: rows >= 100,
            },
            PaperCheck {
                name: "core never saturates".into(),
                paper: "CPU <= 40% at peak".into(),
                measured: format!("peak proxy {peak_cpu:.1}% (timeline compressed)"),
                holds: peak_cpu < 40.0,
            },
            PaperCheck {
                name: "queue never grows noticeably".into(),
                paper: "queue memory 'did not grow noticeably' (Fig. 12c)".into(),
                measured: format!("peak {peak_queue} queued packets"),
                holds: peak_queue < 4_096,
            },
            PaperCheck {
                name: "WSAF stays within its 2^20 budget".into(),
                paper: "33 MB table suffices".into(),
                measured: format!("max load factor {max_load:.3}"),
                holds: max_load < 1.0,
            },
        ],
    );

    let mut snap = im.telemetry();
    snap.set_gauge("fig.peak_cpu_pct", peak_cpu);
    snap.set_gauge("fig.peak_queue", peak_queue as f64);
    snap.set_gauge("fig.max_wsaf_load", max_load);
    snap
}
