//! Baseline shootout (extension): every counter in the repository on the
//! same trace, same memory class — accuracy, state touched per packet,
//! and what each structure *cannot* do.
//!
//! Substantiates the paper's positioning (§§I–II, VI): sketches without
//! flow enumeration (Count-Min, CSM) can't feed a WSAF; bounded Top-K
//! structures (Space-Saving) collapse beyond their capacity; sampling
//! misses mice entirely; InstaMeasure keeps per-flow state for everything
//! that matters at ~2 memory touches per packet.

use instameasure_baselines::{
    CountMinConfig, CountMinSketch, CsmConfig, CsmSketch, PerFlowCounter, SampledNetflow,
    SpaceSaving,
};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_sketch::SketchConfig;
use instameasure_traffic::presets::caida_like;
use instameasure_wsaf::WsafConfig;

use crate::{fmt_count, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot};

fn mean_err(counter: &dyn PerFlowCounter, top: &[(instameasure_packet::FlowKey, u64)]) -> f64 {
    top.iter()
        .map(|(k, t)| (counter.estimate_packets(k) - *t as f64).abs() / *t as f64)
        .sum::<f64>()
        / top.len().max(1) as f64
}

/// Runs the shootout.
pub fn run(args: &BenchArgs) -> Snapshot {
    let trace = caida_like(0.3 * args.scale, args.seed);
    println!("# Baseline shootout: top-100 / top-1000 mean error at comparable memory");
    println!(
        "# trace: {} packets, {} flows",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64)
    );

    let mut im = InstaMeasure::new(
        InstaMeasureConfig::default()
            .with_sketch(
                SketchConfig::builder()
                    .memory_bytes(64 * 1024)
                    .vector_bits(8)
                    .seed(args.seed)
                    .build()
                    .unwrap(),
            )
            .with_wsaf(WsafConfig::builder().entries_log2(16).build().unwrap()),
    );
    let mut cm = CountMinSketch::new(CountMinConfig { depth: 4, width: 1 << 18, seed: args.seed });
    let mut csm =
        CsmSketch::new(CsmConfig { num_counters: 1 << 20, vector_len: 500, seed: args.seed });
    let mut nf = SampledNetflow::new(100);
    let mut ss = SpaceSaving::new(512); // the "up to top-512" regime of SS VI

    for r in &trace.records {
        im.process(r);
        cm.record(r);
        csm.record(r);
        nf.record(r);
        ss.record(r);
    }

    println!("system\tmem_bytes\ttop100_err\ttop1000_err\ttouches_per_pkt\tenumerable");
    let top100 = trace.stats.truth.top_k(100, false);
    let top1000 = trace.stats.truth.top_k(1000, false);
    let rows: Vec<(&str, &dyn PerFlowCounter, f64, &str)> = vec![
        ("instameasure", &im, 2.0, "yes (WSAF)"),
        ("count_min", &cm, 4.0, "no"),
        ("csm", &csm, 1.0, "no"),
        ("sampled_netflow_1:100", &nf, 0.01, "yes (sampled)"),
        ("space_saving_512", &ss, 1.0, "top-512 only"),
    ];
    let mut errs = std::collections::HashMap::new();
    for (name, counter, touches, enumerable) in &rows {
        let e100 = mean_err(*counter, &top100);
        let e1000 = mean_err(*counter, &top1000);
        errs.insert(*name, (e100, e1000));
        println!(
            "{name}\t{}\t{e100:.4}\t{e1000:.4}\t{touches}\t{enumerable}",
            counter.memory_bytes()
        );
    }

    let im_err = errs["instameasure"];
    let ss_err = errs["space_saving_512"];
    let nf_err = errs["sampled_netflow_1:100"];
    print_checks(
        "shootout",
        &[
            PaperCheck {
                name: "InstaMeasure leads at top-1000 depth".into(),
                paper: "SS VI: bounded Top-K is 'quite limited (up to top-512)'".into(),
                measured: format!(
                    "IM {:.2}% vs SpaceSaving {:.2}%",
                    im_err.1 * 100.0,
                    ss_err.1 * 100.0
                ),
                holds: im_err.1 < ss_err.1,
            },
            PaperCheck {
                name: "sampling degrades the deep list".into(),
                paper: "SS II: sampling 'degrades the estimation accuracy'".into(),
                measured: format!("NetFlow 1:100 top-1000 err {:.1}%", nf_err.1 * 100.0),
                holds: nf_err.1 > im_err.1,
            },
            PaperCheck {
                name: "InstaMeasure top-100 in the low single digits".into(),
                paper: "<1% at full scale".into(),
                measured: format!("{:.2}%", im_err.0 * 100.0),
                holds: im_err.0 < 0.08,
            },
        ],
    );

    let mut snap = im.telemetry();
    for (name, (e100, e1000)) in &errs {
        snap.set_gauge(format!("fig.{name}.top100_err"), *e100);
        snap.set_gauge(format!("fig.{name}.top1000_err"), *e1000);
    }
    snap
}
