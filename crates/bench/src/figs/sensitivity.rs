//! Workload-sensitivity study (extension): how robust is the "~1%
//! regulation" headline to the traffic mix?
//!
//! The paper evaluates one CAIDA hour and one campus capture, both
//! Zipf-with-α≈1. Real links drift: heavier tails (α→1.5, CDNs), flatter
//! mixes (α→0.8, scans/IoT), or pathological all-mice/all-elephant loads.
//! This study sweeps the Zipf exponent and two adversarial mixes and
//! reports regulation rate, elephant accuracy and the analytic prediction
//! next to each other.

use std::collections::HashMap;

use instameasure_packet::FlowKey;
use instameasure_sketch::{analysis, FlowFilter, FlowRegulator, SketchConfig};
use instameasure_traffic::SyntheticTraceBuilder;

use crate::{fmt_count, print_checks, BenchArgs, PaperCheck, Snapshot};

fn sketch(seed: u64) -> SketchConfig {
    SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).seed(seed).build().unwrap()
}

struct Row {
    name: String,
    regulation: f64,
    analytic: f64,
    elephant_err: f64,
}

fn run_workload(name: &str, trace: &instameasure_traffic::Trace, seed: u64) -> Row {
    let mut fr = FlowRegulator::new(sketch(seed));
    let mut released: HashMap<FlowKey, f64> = HashMap::new();
    for r in &trace.records {
        if let Some(u) = fr.process(r) {
            *released.entry(u.key).or_insert(0.0) += u.est_pkts;
        }
    }
    let sizes: Vec<u64> = trace.stats.truth.packets.values().copied().collect();
    let analytic = analysis::expected_regulation_rate(&sketch(seed), &sizes, 2);
    let elephants = trace.stats.truth.flows_at_least(500);
    let mut err = 0.0;
    for (key, truth) in &elephants {
        let est = released.get(key).copied().unwrap_or(0.0) + fr.residual_packets(key);
        err += (est - *truth as f64).abs() / *truth as f64;
    }
    Row {
        name: name.to_string(),
        regulation: fr.stats().regulation_rate(),
        analytic,
        elephant_err: if elephants.is_empty() { f64::NAN } else { err / elephants.len() as f64 },
    }
}

/// Runs the sensitivity sweep.
pub fn run(args: &BenchArgs) -> Snapshot {
    println!("# Sensitivity: regulation & accuracy vs traffic mix (32 KB L1)");
    let flows = (15_000.0 * args.scale) as usize;
    let mut rows = Vec::new();

    for alpha in [0.8f64, 1.0, 1.2, 1.5] {
        let trace = SyntheticTraceBuilder::new()
            .num_flows(flows)
            .zipf_alpha(alpha)
            .max_flow_size(((2.0 * (flows as f64).powf(alpha)) as u64).max(1_000))
            .duration_secs(5.0)
            .seed(args.seed)
            .build();
        rows.push(run_workload(&format!("zipf_a{alpha}"), &trace, args.seed));
    }

    // Adversarial mixes.
    let all_mice = SyntheticTraceBuilder::new()
        .num_flows(flows * 4)
        .zipf_alpha(0.1)
        .max_flow_size(3)
        .duration_secs(5.0)
        .seed(args.seed)
        .build();
    rows.push(run_workload("all_mice(<=3pkt)", &all_mice, args.seed));

    let all_elephants = SyntheticTraceBuilder::new()
        .num_flows(50)
        .zipf_alpha(0.01)
        .max_flow_size(20_000)
        .duration_secs(5.0)
        .seed(args.seed)
        .build();
    rows.push(run_workload("all_elephants(20k)", &all_elephants, args.seed));

    println!("workload\tpackets_regulated\tanalytic\telephant_err");
    for r in &rows {
        println!(
            "{}\t{:.4}\t{:.4}\t{}",
            r.name,
            r.regulation,
            r.analytic,
            if r.elephant_err.is_nan() {
                "-".to_string()
            } else {
                format!("{:.4}", r.elephant_err)
            }
        );
    }
    println!(
        "# trace sizes ~{} flows (zipf) / {} (mice) / 50 (elephants)",
        fmt_count(flows as f64),
        fmt_count(all_mice.stats.flows as f64)
    );

    let zipf_rows = &rows[..4];
    let worst_zipf = zipf_rows.iter().map(|r| r.regulation).fold(0.0, f64::max);
    let mice_row = &rows[4];
    let eleph_row = &rows[5];
    let model_ok =
        rows.iter().all(|r| (r.regulation - r.analytic).abs() / r.analytic.max(1e-6) < 0.5);
    print_checks(
        "sensitivity",
        &[
            PaperCheck {
                name: "regulation stays low across Zipf exponents".into(),
                paper: "1.02% on CAIDA (alpha ~1)".into(),
                measured: format!("worst {:.2}% over alpha in 0.8..1.5", worst_zipf * 100.0),
                holds: worst_zipf < 0.05,
            },
            PaperCheck {
                name: "all-mice load regulates near zero".into(),
                paper: "mice are retained (SS II)".into(),
                measured: format!("{:.3}%", mice_row.regulation * 100.0),
                holds: mice_row.regulation < 0.005,
            },
            PaperCheck {
                name: "all-elephant load bounded by 1/retention".into(),
                paper: "~1/100 per elephant".into(),
                measured: format!("{:.2}%", eleph_row.regulation * 100.0),
                holds: eleph_row.regulation < 0.04,
            },
            PaperCheck {
                name: "chain model tracks every mix".into(),
                paper: "(model)".into(),
                measured: "within 50% on all six workloads".into(),
                holds: model_ok,
            },
        ],
    );

    let mut snap = Snapshot::new();
    for r in &rows {
        snap.set_gauge(format!("fig.{}.regulation", r.name), r.regulation);
        snap.set_gauge(format!("fig.{}.analytic", r.name), r.analytic);
        if !r.elephant_err.is_nan() {
            snap.set_gauge(format!("fig.{}.elephant_err", r.name), r.elephant_err);
        }
    }
    snap
}
