//! Fig. 6 — flow-size distributions of the two datasets (both Zipf-like).

use instameasure_traffic::presets::{caida_like, campus_like};
use instameasure_traffic::Trace;

use crate::{fmt_count, print_checks, BenchArgs, PaperCheck, Snapshot};

fn print_ccdf(name: &str, trace: &Trace) {
    println!(
        "# {name}: {} packets, {} flows; protocol mix: {}",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64),
        trace
            .stats
            .protocol_mix()
            .iter()
            .map(|(p, f)| format!("{p} {:.1}%", f * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("threshold_pkts\tccdf_pkts_{name}\tthreshold_bytes\tccdf_bytes_{name}");
    let thresholds = [1u64, 2, 5, 10, 20, 50, 100, 1_000, 10_000, 100_000];
    let pkts = trace.stats.flow_size_ccdf(&thresholds);
    let byte_thresholds: Vec<u64> = thresholds.iter().map(|t| t * 500).collect();
    let bytes = trace.stats.flow_bytes_ccdf(&byte_thresholds);
    for ((t, frac), (tb, fb)) in pkts.iter().zip(&bytes) {
        println!("{t}\t{frac:.6}\t{tb}\t{fb:.6}");
    }
}

/// Runs the Fig. 6 experiment: CCDFs of the CAIDA-like and campus-like
/// traces.
pub fn run(args: &BenchArgs) -> Snapshot {
    println!("# Fig 6: dataset flow-size distributions");
    let caida = caida_like(0.05 * args.scale, args.seed);
    let campus = campus_like(0.05 * args.scale, args.seed + 1);
    print_ccdf("caida_like", &caida);
    print_ccdf("campus_like", &campus);

    let mice_caida = caida.stats.flow_size_ccdf(&[11])[0].1;
    let top_share = {
        let top = caida.stats.truth.top_k(caida.stats.flows / 100, false);
        let top_sum: u64 = top.iter().map(|&(_, c)| c).sum();
        top_sum as f64 / caida.stats.packets as f64
    };
    print_checks(
        "fig6",
        &[
            PaperCheck {
                name: "mice (<=10 pkts) dominate flow count".into(),
                paper: "Zipf-like (Fig. 6a/b)".into(),
                measured: format!("{:.0}% of flows are mice", (1.0 - mice_caida) * 100.0),
                holds: mice_caida < 0.35,
            },
            PaperCheck {
                name: "top 1% of flows carry most packets".into(),
                paper: "heavy-tailed".into(),
                measured: format!("{:.0}% of volume", top_share * 100.0),
                holds: top_share > 0.5,
            },
        ],
    );

    let mut snap = Snapshot::new();
    snap.set_counter("trace.caida.packets", caida.stats.packets);
    snap.set_counter("trace.caida.flows", caida.stats.flows as u64);
    snap.set_counter("trace.campus.packets", campus.stats.packets);
    snap.set_counter("trace.campus.flows", campus.stats.flows as u64);
    snap.set_gauge("trace.caida.top1pct_share", top_share);
    snap
}
