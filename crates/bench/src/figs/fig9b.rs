//! Fig. 9(b) — heavy-hitter detection latency vs attack rate.
//!
//! A constant-rate attacker (10–200 kpps) is raced through the three
//! decoding disciplines. The paper's claims: saturation-based detection
//! lags the packet-arrival ideal by ~10 ms at 10 kpps, dropping to ~1 ms
//! at 130 kpps (heavier attackers are caught faster), and always beats the
//! delegation-based round-trip.

use instameasure_core::latency::{compare_detection_latency, DelegationParams};
use instameasure_core::InstaMeasureConfig;
use instameasure_sketch::SketchConfig;
use instameasure_traffic::attack::{attacker_key, constant_rate_flow};
use instameasure_traffic::{merge_records, SyntheticTraceBuilder};
use instameasure_wsaf::WsafConfig;

use crate::{print_checks, BenchArgs, PaperCheck, Snapshot};

/// Runs the Fig. 9b experiment.
pub fn run(args: &BenchArgs) -> Snapshot {
    println!("# Fig 9b: detection latency vs attack rate");
    // Threshold: 0.05% of a 1 Gbps link's packet capacity over the
    // measurement window, as in the paper; with 64 B packets that is
    // ~740 pps of sustained rate — we use a 500-packet threshold.
    let threshold = 500.0;
    println!("# threshold: {threshold} packets; background: light Zipf noise");
    println!("rate_kpps\ttruth_cross_ms\tsat_delay_ms\tdeleg_delay_ms");

    // Light background so the sketch sees realistic contention.
    let background = SyntheticTraceBuilder::new()
        .num_flows((2_000.0 * args.scale) as usize)
        .max_flow_size(2_000)
        .duration_secs(3.0)
        .seed(args.seed)
        .build()
        .records;

    let cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(args.seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(16).build().unwrap());

    // Saturation delay is a quantization lag (uniform within one WSAF
    // release quantum), so each point averages several attackers with
    // staggered phases.
    let attackers = 8u8;
    let mut delays_ms = Vec::new();
    for rate_kpps in [10u64, 20, 50, 100, 130, 200] {
        let mut sat_sum = 0.0;
        let mut deleg_sum = 0.0;
        let mut truth_sum = 0.0;
        let mut n = 0.0;
        for id in 0..attackers {
            let start = u64::from(id) * 1_300_000; // stagger phases
            let attack =
                constant_rate_flow(attacker_key(id), rate_kpps * 1000, 64, start, 3_000_000_000);
            let records = merge_records(vec![background.clone(), attack]);
            let cmp = compare_detection_latency(
                &records,
                &attacker_key(id),
                threshold,
                cfg,
                DelegationParams::default(),
            );
            let (Some(truth), Some(sat), Some(deleg)) =
                (cmp.truth_crossing, cmp.saturation_delay_nanos(), cmp.delegation_delay_nanos())
            else {
                continue;
            };
            truth_sum += (truth - start) as f64 / 1e6;
            sat_sum += sat as f64 / 1e6;
            deleg_sum += deleg as f64 / 1e6;
            n += 1.0;
        }
        let (truth_ms, sat_delay, deleg_delay) = (truth_sum / n, sat_sum / n, deleg_sum / n);
        println!("{rate_kpps}\t{truth_ms:.3}\t{sat_delay:.3}\t{deleg_delay:.3}");
        delays_ms.push((rate_kpps, sat_delay, deleg_delay));
    }

    let at = |r: u64| delays_ms.iter().find(|d| d.0 == r).map(|d| d.1).unwrap_or(f64::NAN);
    let slow = at(10);
    let fast = at(130);
    let deleg_min = delays_ms.iter().map(|d| d.2).fold(f64::INFINITY, f64::min);
    print_checks(
        "fig9b",
        &[
            PaperCheck {
                name: "saturation delay @ 10 kpps".into(),
                paper: "~10 ms".into(),
                measured: format!("{slow:.2} ms"),
                holds: (0.5..40.0).contains(&slow),
            },
            PaperCheck {
                name: "saturation delay @ 130 kpps".into(),
                paper: "~1 ms".into(),
                measured: format!("{fast:.2} ms"),
                holds: fast < 3.0,
            },
            PaperCheck {
                name: "heavier attackers caught faster".into(),
                paper: "delay shrinks with rate".into(),
                measured: format!("{slow:.2} ms -> {fast:.2} ms"),
                holds: fast < slow,
            },
            PaperCheck {
                name: "delegation pays tens of ms".into(),
                paper: ">= epoch + network delay".into(),
                measured: format!("min {deleg_min:.1} ms"),
                holds: deleg_min >= 10.0,
            },
        ],
    );

    let mut snap = Snapshot::new();
    for (rate_kpps, sat, deleg) in &delays_ms {
        snap.set_gauge(format!("fig.sat_delay_ms.at{rate_kpps}kpps"), *sat);
        snap.set_gauge(format!("fig.deleg_delay_ms.at{rate_kpps}kpps"), *deleg);
    }
    snap
}
