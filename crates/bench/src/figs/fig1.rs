//! Fig. 1 — RCC's saturation (WSAF insertion) rate is 12–19% of the packet
//! arrival rate, too high for an in-DRAM WSAF.

use instameasure_sketch::{FlowFilter, SingleLayerRcc, SketchConfig};
use instameasure_traffic::presets::caida_like;

use crate::{fmt_count, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot};

/// Runs the Fig. 1 experiment: replay the CAIDA-like trace through
/// single-layer RCC with 8- and 16-bit virtual vectors and print the
/// per-second pps/ips series.
pub fn run(args: &BenchArgs) -> Snapshot {
    let trace = caida_like(0.15 * args.scale, args.seed);
    println!("# Fig 1: RCC saturation rate vs packet arrival rate");
    println!(
        "# trace: {} packets, {} flows, {:.1}s",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64),
        trace.stats.duration_nanos as f64 / 1e9
    );

    let mem = 128 * 1024;
    let mut rcc8 = SingleLayerRcc::new(
        SketchConfig::builder().memory_bytes(mem).vector_bits(8).seed(args.seed).build().unwrap(),
    );
    let mut rcc16 = SingleLayerRcc::new(
        SketchConfig::builder().memory_bytes(mem).vector_bits(16).seed(args.seed).build().unwrap(),
    );

    let bin = 1_000_000_000u64; // 1 s bins
    println!("bin_s\tpps\trcc8_ips\trcc8_rate\trcc16_ips\trcc16_rate");
    let mut bin_start = 0u64;
    let (mut p, mut u8_, mut u16_) = (0u64, 0u64, 0u64);
    let (mut prev8, mut prev16) = (0u64, 0u64);
    let mut rows = Vec::new();
    for r in &trace.records {
        while r.ts_nanos >= bin_start + bin {
            rows.push((bin_start, p, u8_, u16_));
            bin_start += bin;
            p = 0;
            u8_ = 0;
            u16_ = 0;
        }
        p += 1;
        rcc8.process(r);
        rcc16.process(r);
        let s8 = rcc8.stats().updates;
        let s16 = rcc16.stats().updates;
        u8_ += s8 - prev8;
        u16_ += s16 - prev16;
        prev8 = s8;
        prev16 = s16;
    }
    rows.push((bin_start, p, u8_, u16_));

    for (t, p, u8_, u16_) in &rows {
        let (p, u8_, u16_) = (*p as f64, *u8_ as f64, *u16_ as f64);
        if p == 0.0 {
            continue;
        }
        println!(
            "{:.0}\t{:.0}\t{:.0}\t{:.3}\t{:.0}\t{:.3}",
            *t as f64 / 1e9,
            p,
            u8_,
            u8_ / p,
            u16_,
            u16_ / p
        );
    }

    let rate8 = rcc8.stats().regulation_rate();
    let rate16 = rcc16.stats().regulation_rate();
    print_checks(
        "fig1",
        &[
            PaperCheck {
                name: "RCC 8-bit saturation rate".into(),
                paper: "~19% of pps".into(),
                measured: format!("{:.1}%", rate8 * 100.0),
                holds: (0.08..0.30).contains(&rate8),
            },
            PaperCheck {
                name: "RCC 16-bit saturation rate".into(),
                paper: "~12% of pps".into(),
                measured: format!("{:.1}%", rate16 * 100.0),
                holds: (0.04..0.20).contains(&rate16) && rate16 < rate8,
            },
            PaperCheck {
                name: "rate exceeds SRAM/DRAM speed margin (5-10%)".into(),
                paper: "yes -> RCC unusable for In-DRAM WSAF".into(),
                measured: format!("8-bit {:.1}% > 10%", rate8 * 100.0),
                holds: rate8 > 0.10,
            },
        ],
    );

    let mut snap = rcc8.telemetry().prefixed("rcc8");
    snap.merge(&rcc16.telemetry().prefixed("rcc16"));
    snap
}
