//! One module per paper figure/table. Each exposes `run(&BenchArgs)`.

pub mod ablations;
pub mod fig1;
pub mod fig10_11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9a;
pub mod fig9b;
pub mod overhead;
pub mod sensitivity;
pub mod shootout;
pub mod table_csm;
