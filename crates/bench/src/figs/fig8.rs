//! Fig. 8 — retention capacity (a), saturation frequency (b) and accuracy
//! cost (c) of FlowRegulator vs RCC across virtual-vector sizes.

use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use instameasure_sketch::{decode, FlowFilter, FlowRegulator, SingleLayerRcc, SketchConfig};
use instameasure_traffic::presets::caida_like;

use crate::{print_checks, BenchArgs, PaperCheck, Snapshot};

fn lone_flow_key() -> FlowKey {
    FlowKey::new([10, 1, 2, 3], [10, 4, 5, 6], 7777, 443, Protocol::Tcp)
}

/// Simulated retention capacity and saturation frequency of a regulator
/// for a single isolated flow: (mean packets between WSAF updates,
/// updates per packet).
fn simulate_single_flow(reg: &mut dyn FlowFilter, packets: u64) -> (f64, f64) {
    let key = lone_flow_key();
    for t in 0..packets {
        reg.process(&PacketRecord::new(key, 600, t));
    }
    let s = reg.stats();
    let updates = s.updates.max(1);
    (s.packets as f64 / updates as f64, s.updates as f64 / s.packets as f64)
}

/// Mean relative error of a regulator over the elephants of a small
/// CAIDA-like trace (released + residual vs truth) — panel (c).
fn accuracy_on_trace(reg: &mut dyn FlowFilter, args: &BenchArgs) -> f64 {
    use std::collections::HashMap;
    let trace = caida_like(0.01 * args.scale, args.seed);
    let mut released: HashMap<FlowKey, f64> = HashMap::new();
    for r in &trace.records {
        if let Some(u) = reg.process(r) {
            *released.entry(u.key).or_insert(0.0) += u.est_pkts;
        }
    }
    let min_size = (trace.stats.packets / 1000).max(100);
    let mut errs = Vec::new();
    for (key, truth) in trace.stats.truth.flows_at_least(min_size) {
        let est = released.get(&key).copied().unwrap_or(0.0) + reg.residual_packets(&key);
        errs.push((est - truth as f64).abs() / truth as f64);
    }
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

/// Runs the Fig. 8 experiment across total vector sizes 8–64 bits.
pub fn run(args: &BenchArgs) -> Snapshot {
    println!("# Fig 8: retention capacity / saturation frequency / accuracy vs vector size");
    println!("# total_bits: FR splits bits across its two layers; RCC uses them in one layer");
    println!(
        "total_bits\trcc_retention\tfr_retention\trcc_sat_freq\tfr_sat_freq\trcc_err\tfr_err\trcc_model\tfr_model"
    );

    let packets = (500_000.0 * args.scale) as u64;
    let mut checks: Vec<PaperCheck> = Vec::new();
    let mut fr16_retention = 0.0;
    let mut rcc16_retention = 0.0;
    let mut rcc64_retention = 0.0;
    let mut fr16_err = 0.0;
    let mut rcc16_err = 0.0;

    for total_bits in [8u32, 16, 32, 64] {
        let rcc_cfg = SketchConfig::builder()
            .memory_bytes(64 * 1024)
            .vector_bits(total_bits)
            .seed(args.seed)
            .build()
            .unwrap();
        let fr_bits = total_bits / 2;
        let fr_cfg = SketchConfig::builder()
            .memory_bytes(64 * 1024)
            .vector_bits(fr_bits)
            .seed(args.seed)
            .build()
            .unwrap();

        let mut rcc = SingleLayerRcc::new(rcc_cfg);
        let (rcc_ret, rcc_freq) = simulate_single_flow(&mut rcc, packets);
        let mut fr = FlowRegulator::new(fr_cfg);
        let (fr_ret, fr_freq) = simulate_single_flow(&mut fr, packets);

        let mut rcc_acc = SingleLayerRcc::new(rcc_cfg);
        let rcc_err = accuracy_on_trace(&mut rcc_acc, args);
        let mut fr_acc = FlowRegulator::new(fr_cfg);
        let fr_err = accuracy_on_trace(&mut fr_acc, args);

        // Analytical models: RCC retains one coupon epoch; FR retains the
        // product of its two layers' epochs.
        let rcc_model = decode::saturation_period(total_bits, (3 * total_bits / 8).max(1));
        let e1 = decode::saturation_period(fr_bits, (3 * fr_bits / 8).max(1));
        let fr_model = e1 * e1;

        println!(
            "{total_bits}\t{rcc_ret:.1}\t{fr_ret:.1}\t{rcc_freq:.4}\t{fr_freq:.4}\t{rcc_err:.4}\t{fr_err:.4}\t{rcc_model:.1}\t{fr_model:.1}"
        );

        if total_bits == 16 {
            fr16_retention = fr_ret;
            rcc16_retention = rcc_ret;
            fr16_err = fr_err;
            rcc16_err = rcc_err;
        }
        if total_bits == 64 {
            rcc64_retention = rcc_ret;
        }
    }

    checks.push(PaperCheck {
        name: "FR(16-bit) retention ~100 pkts, ~10x RCC(16-bit)".into(),
        paper: "FR ~100; RCC 8-bit only ~9".into(),
        measured: format!("FR {fr16_retention:.0}, RCC {rcc16_retention:.0}"),
        holds: fr16_retention > 3.0 * rcc16_retention && fr16_retention > 30.0,
    });
    checks.push(PaperCheck {
        name: "RCC grows additively: 64-bit retains only ~77".into(),
        paper: "77 pkts @ 64-bit".into(),
        measured: format!("{rcc64_retention:.0} pkts"),
        holds: (30.0..120.0).contains(&rcc64_retention),
    });
    checks.push(PaperCheck {
        name: "FR pays small accuracy penalty vs RCC".into(),
        paper: "small except 8-bit total (Fig. 8c)".into(),
        measured: format!("FR {:.2}% vs RCC {:.2}% @16-bit", fr16_err * 100.0, rcc16_err * 100.0),
        holds: fr16_err < 0.25,
    });
    print_checks("fig8", &checks);

    let mut snap = Snapshot::new();
    snap.set_gauge("fig.fr16.retention", fr16_retention);
    snap.set_gauge("fig.rcc16.retention", rcc16_retention);
    snap.set_gauge("fig.rcc64.retention", rcc64_retention);
    snap.set_gauge("fig.fr16.elephant_err", fr16_err);
    snap.set_gauge("fig.rcc16.elephant_err", rcc16_err);
    snap
}
