//! §V-C comparison table — CSM vs InstaMeasure on a one-minute slice.
//!
//! Paper: CSM with 60 MB (twice InstaMeasure's largest) could not decode
//! the full hour; on one minute it reached 2.4% error for the top-100 and
//! 8.53% for the top-1000, far worse than InstaMeasure — and its decode is
//! offline with thousands of operations per flow.

use instameasure_baselines::{CsmConfig, CsmSketch, PerFlowCounter};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_sketch::SketchConfig;
use instameasure_traffic::presets::caida_like;
use instameasure_wsaf::WsafConfig;

use crate::{fmt_count, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot};

fn mean_err(pairs: &[(f64, f64)]) -> f64 {
    pairs.iter().map(|&(e, t)| (e - t).abs() / t).sum::<f64>() / pairs.len().max(1) as f64
}

/// Runs the §V-C comparison.
pub fn run(args: &BenchArgs) -> Snapshot {
    // Large enough that the top-100 flows are multi-thousand-packet
    // elephants, as in the paper's one-minute CAIDA slice.
    let trace = caida_like(0.5 * args.scale, args.seed);
    println!("# Table (SS V-C): CSM vs InstaMeasure, top-K mean error");
    println!(
        "# trace: {} packets, {} flows (one-minute-slice stand-in)",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64)
    );

    // CSM with generous memory (scaled-down from the paper's 60 MB: their
    // trace minute is much larger than ours; keep the 2x-InstaMeasure
    // ratio instead, which is the comparison that matters).
    let csm_counters = 1usize << 21; // 8 MB of 32-bit counters
    let mut csm = CsmSketch::new(CsmConfig {
        num_counters: csm_counters,
        vector_len: 1_000,
        seed: args.seed,
    });
    let im_cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(256 * 1024) // 1 MB sketch total
                .vector_bits(8)
                .seed(args.seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(16).build().unwrap());
    let mut im = InstaMeasure::new(im_cfg);

    for r in &trace.records {
        csm.record(r);
        im.process(r);
    }

    println!("system\ttop_k\tmean_err\tdecode_ops_per_flow");
    let mut rows = Vec::new();
    for k in [100usize, 1000] {
        let truth = trace.stats.truth.top_k(k, false);
        let csm_pairs: Vec<(f64, f64)> =
            truth.iter().map(|(key, t)| (csm.estimate_packets(key), *t as f64)).collect();
        let im_pairs: Vec<(f64, f64)> =
            truth.iter().map(|(key, t)| (im.estimate_packets(key), *t as f64)).collect();
        let (ce, ie) = (mean_err(&csm_pairs), mean_err(&im_pairs));
        println!("csm\t{k}\t{ce:.4}\t{}", csm.decode_cost_ops());
        println!("instameasure\t{k}\t{ie:.4}\t~2");
        rows.push((k, ce, ie));
    }

    let (_, csm100, im100) = (rows[0].0, rows[0].1, rows[0].2);
    let (_, csm1000, im1000) = (rows[1].0, rows[1].1, rows[1].2);
    print_checks(
        "table_csm",
        &[
            PaperCheck {
                name: "InstaMeasure beats CSM at top-100".into(),
                paper: "CSM 2.4% vs IM <1%".into(),
                measured: format!("CSM {:.2}% vs IM {:.2}%", csm100 * 100.0, im100 * 100.0),
                holds: im100 < csm100,
            },
            PaperCheck {
                name: "CSM degrades at top-1000".into(),
                paper: "8.53%".into(),
                measured: format!("CSM {:.2}% vs IM {:.2}%", csm1000 * 100.0, im1000 * 100.0),
                holds: csm1000 > csm100 && im1000 < csm1000,
            },
            PaperCheck {
                name: "CSM decode is offline-scale".into(),
                paper: "whole-hour decode did not terminate".into(),
                measured: format!("{} ops/flow vs ~2", csm.decode_cost_ops()),
                holds: csm.decode_cost_ops() > 100,
            },
        ],
    );

    let mut snap = im.telemetry();
    snap.set_gauge("fig.csm_top100_err", csm100);
    snap.set_gauge("fig.im_top100_err", im100);
    snap.set_gauge("fig.csm_top1000_err", csm1000);
    snap.set_gauge("fig.im_top1000_err", im1000);
    snap
}
