//! Fig. 9(a) — processing speed vs number of worker cores, plus the
//! batched-dispatch sweep that makes the multi-core numbers honest.
//!
//! The paper pre-loads the CAIDA trace into memory and measures pure
//! encode/dispatch throughput on an 8-core Atom (18.9 → 46.3 Mpps for
//! 1 → 4 cores). We do the same over the pre-loaded synthetic trace.
//! Absolute Mpps depends on the host CPU; the reproduced claim is the
//! *scaling shape* — which requires as many physical cores as workers, so
//! the footer also reports per-worker busy time (the work-partitioning
//! view that is meaningful even on a smaller host).
//!
//! The batch sweep (batch sizes 1/64/256/1024 at a fixed worker count)
//! shows why dispatch is batched at all: at batch 1 every packet pays a
//! queue synchronization, and the manager — not the sketch — is the
//! bottleneck. The differential test suite guarantees the sweep changes
//! only speed, never results.

use instameasure_core::multicore::{run_multicore, MultiCoreConfig};
use instameasure_core::InstaMeasureConfig;
use instameasure_sketch::SketchConfig;
use instameasure_traffic::presets::caida_like;
use instameasure_wsaf::WsafConfig;

use crate::{fmt_count, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot};

fn per_worker_cfg(seed: u64) -> InstaMeasureConfig {
    InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(18).build().unwrap())
}

/// Runs the Fig. 9a experiment: worker sweep at the default batch size,
/// then the batch-size sweep at a fixed worker count.
pub fn run(args: &BenchArgs) -> Snapshot {
    let trace = caida_like(0.1 * args.scale, args.seed);
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("# Fig 9a: processing speed vs cores");
    println!(
        "# trace: {} packets (pre-loaded); host has {host_cores} core(s)",
        fmt_count(trace.stats.packets as f64)
    );
    println!("workers\tthroughput_mpps\tper_worker_mpps_busy\timbalance");

    let mut single = 0.0f64;
    let mut best = 0.0f64;
    let mut snap = Snapshot::new();
    for workers in 1..=4usize {
        let cfg = MultiCoreConfig::builder()
            .workers(workers)
            .queue_capacity(8192)
            .per_worker(per_worker_cfg(args.seed))
            .build()
            .unwrap();
        let (sys, report) = run_multicore(&trace.records, &cfg);
        if workers == 4 {
            // Keep the deepest run's live telemetry plus the merged shard
            // view for --metrics-json.
            snap = report.telemetry.clone();
            snap.merge(&sys.telemetry());
        }
        let mpps = report.throughput_pps / 1e6;
        // Work-partitioning view: packets per second of *busy worker time*
        // summed over workers — how the system would scale with enough
        // physical cores.
        let busy_total: u64 = report.worker_busy_nanos.iter().sum();
        let busy_mpps = if busy_total == 0 {
            0.0
        } else {
            report.packets as f64 * 1e9 / (busy_total as f64 / workers as f64) / 1e6
        };
        println!("{workers}\t{mpps:.2}\t{busy_mpps:.2}\t{:.2}", report.imbalance());
        if workers == 1 {
            single = mpps;
        }
        best = best.max(mpps);
    }

    // Batch-size sweep at the full worker count: the dispatch-cost view.
    let sweep_workers = 4usize;
    println!("\n# batched dispatch: throughput vs batch size ({sweep_workers} workers)");
    println!("batch_size\tthroughput_mpps\tbatches_sent");
    let batch_sizes = [1usize, 64, 256, 1024];
    let mut batch_mpps = Vec::with_capacity(batch_sizes.len());
    for &batch_size in &batch_sizes {
        let cfg = MultiCoreConfig::builder()
            .workers(sweep_workers)
            .queue_capacity(8192)
            .batch_size(batch_size)
            .per_worker(per_worker_cfg(args.seed))
            .build()
            .unwrap();
        let (_, report) = run_multicore(&trace.records, &cfg);
        let mpps = report.throughput_pps / 1e6;
        println!("{batch_size}\t{mpps:.2}\t{}", report.batches_sent);
        snap.set_gauge(format!("fig.batch{batch_size}_mpps"), mpps);
        batch_mpps.push(mpps);
    }
    let monotone_to_256 = batch_mpps.windows(2).take(2).all(|w| w[1] >= w[0]);

    print_checks(
        "fig9a",
        &[
            PaperCheck {
                name: "single-core throughput".into(),
                paper: "18.88 Mpps (Atom C2758)".into(),
                measured: format!("{single:.2} Mpps (host-dependent)"),
                holds: single > 1.0,
            },
            PaperCheck {
                name: "multi-core scaling (needs >= 4 host cores)".into(),
                paper: "46.32 Mpps @ 4 cores (~2.5x)".into(),
                measured: format!(
                    "best {best:.2} Mpps on {host_cores}-core host{}",
                    if host_cores < 4 { " — scaling not observable here" } else { "" }
                ),
                holds: host_cores < 4 || best > 1.5 * single,
            },
            PaperCheck {
                name: "batched dispatch amortizes queue synchronization".into(),
                paper: "per-packet sends bottleneck the manager (cf. PriMe's front buffer)".into(),
                measured: format!(
                    "batch 1 -> 64 -> 256: {:.2} -> {:.2} -> {:.2} Mpps{}",
                    batch_mpps[0],
                    batch_mpps[1],
                    batch_mpps[2],
                    if monotone_to_256 { " (monotone)" } else { "" }
                ),
                holds: monotone_to_256 && batch_mpps[2] > batch_mpps[0],
            },
        ],
    );

    snap.set_gauge("fig.single_core_mpps", single);
    snap.set_gauge("fig.best_mpps", best);
    snap.set_gauge("fig.batch_speedup_1_to_256", batch_mpps[2] / batch_mpps[0].max(1e-9));
    snap
}
