//! Fig. 13 — per-flow estimation accuracy on the campus capture: standard
//! error per size bucket, packets and bytes.
//!
//! Paper: packet standard errors 0.54% (1000K+), 1.61% (100K+), 3.46%
//! (10K+); byte errors 0.63% / 1.74% / 3.65%.

use instameasure_core::metrics::{paper_packet_buckets, standard_error};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_sketch::SketchConfig;
use instameasure_traffic::presets::campus_like;
use instameasure_wsaf::WsafConfig;

use crate::{fmt_count, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot};

/// Runs the Fig. 13 experiment.
pub fn run(args: &BenchArgs) -> Snapshot {
    let trace = campus_like(0.08 * args.scale, args.seed);
    // Anchor buckets on the head of the distribution (see fig10_11): the
    // campus capture's 1000K+ bucket sits ~3x under its largest flow.
    let max_flow = trace.stats.truth.packets.values().max().copied().unwrap_or(1);
    let bucket_scale = max_flow as f64 / 3.0e6;
    println!("# Fig 13: real-world estimation accuracy (standard error by bucket)");
    println!(
        "# trace: {} packets, {} flows; buckets scaled by {:.2e}",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64),
        bucket_scale
    );

    // The paper's deployment config: 128 KB sketch (32 KB L1), 2^20 WSAF.
    let cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(args.seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(20).build().unwrap());
    let mut im = InstaMeasure::new(cfg);
    for r in &trace.records {
        im.process(r);
    }

    let buckets = paper_packet_buckets(bucket_scale);
    println!("bucket\tflows\tpkt_std_err\tbyte_std_err");
    let mut pkt_errs = Vec::new();
    let byte_factor = trace.stats.bytes as f64 / trace.stats.packets as f64;
    for b in &buckets {
        let mut pkt_pairs = Vec::new();
        let mut byte_pairs = Vec::new();
        for (key, &truth) in &trace.stats.truth.packets {
            if b.contains(truth) {
                pkt_pairs.push((im.estimate_packets(key), truth as f64));
                let tb = trace.stats.truth.bytes[key] as f64;
                if tb > 0.0 {
                    byte_pairs.push((im.estimate_bytes(key), tb));
                }
            }
        }
        let se_p = standard_error(&pkt_pairs);
        let se_b = standard_error(&byte_pairs);
        println!(
            "{}\t{}\t{}\t{}",
            b.label,
            pkt_pairs.len(),
            se_p.map_or("-".into(), |e| format!("{:.4}", e)),
            se_b.map_or("-".into(), |e| format!("{:.4}", e)),
        );
        if let Some(e) = se_p {
            pkt_errs.push((b.label, e, pkt_pairs.len()));
        }
    }
    let _ = byte_factor;

    // Also emit a small per-flow scatter sample (est vs truth) like the
    // figure's y=x plot.
    println!("# scatter sample (truth_pkts\test_pkts)");
    let mut emitted = 0;
    for (key, &truth) in &trace.stats.truth.packets {
        if truth >= (100.0 * bucket_scale).max(10.0) as u64 && emitted < 50 {
            println!("scatter\t{truth}\t{:.1}", im.estimate_packets(key));
            emitted += 1;
        }
    }

    let largest = pkt_errs.last().map_or(f64::NAN, |&(_, e, _)| e);
    let smallest_bucket = pkt_errs.first().map_or(f64::NAN, |&(_, e, _)| e);
    print_checks(
        "fig13",
        &[
            PaperCheck {
                name: "standard error of largest flows".into(),
                paper: "0.54% pkts / 0.63% bytes".into(),
                measured: format!("{:.2}%", largest * 100.0),
                holds: largest < 0.10,
            },
            PaperCheck {
                name: "error grows as flows shrink".into(),
                paper: "0.54% -> 3.46% across buckets".into(),
                measured: format!(
                    "{:.2}% (large) vs {:.2}% (small)",
                    largest * 100.0,
                    smallest_bucket * 100.0
                ),
                holds: largest <= smallest_bucket,
            },
        ],
    );

    let mut snap = im.telemetry();
    snap.set_gauge("fig.std_err_largest_bucket", largest);
    snap.set_gauge("fig.std_err_smallest_bucket", smallest_bucket);
    snap
}
