//! Fig. 7 — WSAF ips relaxation: FlowRegulator passes ~1% of packets to
//! the WSAF where RCC passes ~12%, leaving DRAM ample margin.

use instameasure_autotune::MachineProfile;
use instameasure_memmodel::{MarginAnalysis, MemoryTechnology};
use instameasure_sketch::{FlowFilter, FlowRegulator, SingleLayerRcc, SketchConfig};
use instameasure_traffic::presets::caida_like;

use crate::{fmt_count, print_checks, BenchArgs, Instrumented, PaperCheck, Snapshot};

/// Runs the Fig. 7 experiment: pps vs RCC-ips vs FlowRegulator-ips over
/// the CAIDA-like trace (128 KB sketches, the paper's real-world config).
pub fn run(args: &BenchArgs) -> Snapshot {
    let trace = caida_like(0.15 * args.scale, args.seed);
    println!("# Fig 7: WSAF insertion-rate relaxation (FR vs RCC)");
    println!(
        "# trace: {} packets, {} flows",
        fmt_count(trace.stats.packets as f64),
        fmt_count(trace.stats.flows as f64)
    );

    // Paper: FlowRegulator with 128 KB DRAM total => 32 KB per layer.
    let fr_cfg = SketchConfig::builder()
        .memory_bytes(32 * 1024)
        .vector_bits(8)
        .seed(args.seed)
        .build()
        .unwrap();
    let rcc_cfg = SketchConfig::builder()
        .memory_bytes(128 * 1024)
        .vector_bits(8)
        .seed(args.seed)
        .build()
        .unwrap();
    let mut fr = FlowRegulator::new(fr_cfg);
    let mut rcc = SingleLayerRcc::new(rcc_cfg);

    let bin = 1_000_000_000u64;
    println!("bin_s\tpps\trcc_ips\tfr_ips\trcc_rate\tfr_rate");
    let mut rows: Vec<(u64, u64, u64, u64)> = Vec::new();
    let mut bin_start = 0u64;
    let (mut p, mut ur, mut uf) = (0u64, 0u64, 0u64);
    let (mut prev_r, mut prev_f) = (0u64, 0u64);
    for r in &trace.records {
        while r.ts_nanos >= bin_start + bin {
            rows.push((bin_start, p, ur, uf));
            bin_start += bin;
            p = 0;
            ur = 0;
            uf = 0;
        }
        p += 1;
        rcc.process(r);
        fr.process(r);
        let sr = rcc.stats().updates;
        let sf = fr.stats().updates;
        ur += sr - prev_r;
        uf += sf - prev_f;
        prev_r = sr;
        prev_f = sf;
    }
    rows.push((bin_start, p, ur, uf));
    for (t, p, ur, uf) in &rows {
        if *p == 0 {
            continue;
        }
        println!(
            "{:.0}\t{}\t{}\t{}\t{:.4}\t{:.4}",
            *t as f64 / 1e9,
            p,
            ur,
            uf,
            *ur as f64 / *p as f64,
            *uf as f64 / *p as f64
        );
    }

    let fr_rate = fr.stats().regulation_rate();
    let rcc_rate = rcc.stats().regulation_rate();
    // Cross-check against the noise-free analytic model (sketch::analysis).
    let sizes: Vec<u64> = trace.stats.truth.packets.values().copied().collect();
    let fr_analytic = instameasure_sketch::analysis::expected_regulation_rate(&fr_cfg, &sizes, 2);
    let rcc_analytic = instameasure_sketch::analysis::expected_regulation_rate(&rcc_cfg, &sizes, 1);
    println!("# analytic (noise-free) rates: FR {:.4}, RCC {:.4}", fr_analytic, rcc_analytic);
    let pps = trace.stats.mean_pps();
    // Accesses per insertion follow the configured probe chain (2 layers
    // for FR, 1 for RCC), not the old blanket two-access constant; the
    // access latency is the paper's 80 ns DRAM figure unless a calibrated
    // profile (INSTAMEASURE_PROFILE, written by `instameasure tune`)
    // supplies this host's measured number.
    let fr_probes = instameasure_sketch::analysis::expected_probes_per_insert(&fr_cfg, &sizes, 2);
    let rcc_probes = instameasure_sketch::analysis::expected_probes_per_insert(&rcc_cfg, &sizes, 1);
    let measured_ns = std::env::var_os(instameasure_autotune::PROFILE_PATH_ENV)
        .map(std::path::PathBuf::from)
        .and_then(|p| MachineProfile::load(&p).ok())
        .map(|p| p.dram_ns());
    match measured_ns {
        Some(ns) => println!("# WSAF access latency: {ns:.1} ns (calibrated profile)"),
        None => println!(
            "# WSAF access latency: 80.0 ns (paper DRAM constant; point \
             INSTAMEASURE_PROFILE at a calibrated profile to use this host's)"
        ),
    }
    let margin_for = |rate: f64, probes: f64| {
        let mut m = MarginAnalysis::new(pps, rate, MemoryTechnology::Dram)
            .with_probes_per_insert(probes.max(1.0));
        if let Some(ns) = measured_ns {
            m = m.with_access_nanos(ns);
        }
        m.margin()
    };
    let fr_margin = margin_for(fr_rate, fr_probes);
    let rcc_margin = margin_for(rcc_rate, rcc_probes);
    println!("# DRAM margin at trace pps: FR {fr_margin:.1}x, RCC {rcc_margin:.1}x");

    print_checks(
        "fig7",
        &[
            PaperCheck {
                name: "FlowRegulator regulation rate".into(),
                paper: "1.02% (128 KB DRAM)".into(),
                measured: format!("{:.2}%", fr_rate * 100.0),
                holds: fr_rate < 0.05,
            },
            PaperCheck {
                name: "RCC regulation rate".into(),
                paper: "~12% (112 kips @ ~1 Mpps)".into(),
                measured: format!("{:.2}%", rcc_rate * 100.0),
                holds: (0.05..0.30).contains(&rcc_rate),
            },
            PaperCheck {
                name: "FR vs RCC improvement factor".into(),
                paper: "~12x".into(),
                measured: format!("{:.1}x", rcc_rate / fr_rate.max(1e-9)),
                holds: rcc_rate / fr_rate.max(1e-9) > 4.0,
            },
            PaperCheck {
                name: "measured rates match the analytic chain model".into(),
                paper: "(model, not in paper)".into(),
                measured: format!(
                    "FR {:.2}% vs model {:.2}%; RCC {:.2}% vs model {:.2}%",
                    fr_rate * 100.0,
                    fr_analytic * 100.0,
                    rcc_rate * 100.0,
                    rcc_analytic * 100.0
                ),
                holds: (fr_rate - fr_analytic).abs() / fr_analytic < 0.5
                    && (rcc_rate - rcc_analytic).abs() / rcc_analytic < 0.5,
            },
        ],
    );

    // The FlowRegulator's full regulator.* telemetry (including the
    // regulation_rate gauge this figure is about), the baseline RCC's
    // rcc.* metrics, and the figure-level margin gauges.
    let mut snap = fr.telemetry();
    snap.merge(&rcc.telemetry());
    snap.set_gauge("fig.fr_dram_margin", fr_margin);
    snap.set_gauge("fig.rcc_dram_margin", rcc_margin);
    snap.set_gauge("fig.fr_analytic_rate", fr_analytic);
    snap.set_gauge("fig.rcc_analytic_rate", rcc_analytic);
    snap
}
