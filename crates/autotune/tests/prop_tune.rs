//! Property tests of the configuration solver on the golden
//! [`MachineProfile::paper`] fixture.
//!
//! Three families of invariants:
//!
//! * **Feasibility** — whatever plan `solve` returns must actually meet
//!   the request it was handed (margin, accuracy, geometry bounds) and
//!   materialize as a runnable [`instameasure_core::InstaMeasureConfig`].
//! * **Monotonicity** — loosening any axis of the request (higher
//!   epsilon, lower pps, lower margin) never turns a feasible problem
//!   infeasible, and a uniformly slower memory never makes a problem
//!   *more* solvable.
//! * **Golden fixture** — the paper profile at the documented default
//!   request solves to one pinned geometry, so solver regressions show
//!   up as a diff instead of silent drift.

use instameasure_autotune::{
    solve, zipf_sizes, LatencyPoint, MachineProfile, TunePlan, TuneRequest,
};
use proptest::prelude::*;

/// A profile uniformly `factor`× slower than the paper fixture.
fn scaled_profile(factor: f64) -> MachineProfile {
    let paper = MachineProfile::paper();
    let points = paper
        .points()
        .iter()
        .map(|p| LatencyPoint { bytes: p.bytes, nanos: p.nanos * factor })
        .collect();
    MachineProfile::from_parts(points, paper.hash_ns() * factor, paper.seq_ns() * factor, 0, false)
        .expect("scaled fixture is valid")
}

/// Every structural bound a returned plan must satisfy, plus the parts
/// of the request the plan's own predictions encode.
fn assert_plan_well_formed(plan: &TunePlan, req: &TuneRequest) {
    assert!(
        [4, 8, 16, 32].contains(&plan.vector_bits),
        "vector width {} outside the supported set",
        plan.vector_bits
    );
    assert!((1..=4).contains(&plan.layers), "layer count {}", plan.layers);
    assert!(
        plan.l1_memory_bytes.is_power_of_two()
            && (32 * 1024..=1024 * 1024).contains(&plan.l1_memory_bytes),
        "L1 size {} outside [32 KB, 1 MB]",
        plan.l1_memory_bytes
    );
    assert!(
        (14..=26).contains(&plan.wsaf_entries_log2),
        "WSAF log2 {} outside [14, 26]",
        plan.wsaf_entries_log2
    );
    assert!(
        plan.margin >= req.min_margin,
        "margin {} below the requested {}",
        plan.margin,
        req.min_margin
    );
    if let instameasure_autotune::TuneTarget::Accuracy { epsilon, .. } = req.target {
        assert!(
            plan.predicted_epsilon <= epsilon,
            "predicted epsilon {} exceeds the {} target",
            plan.predicted_epsilon,
            epsilon
        );
    }
    assert!((0.0..=1.0).contains(&plan.predicted_regulation), "{}", plan.predicted_regulation);
    assert!(plan.probes_per_insert >= 1.0, "{}", plan.probes_per_insert);
    assert!(plan.access_nanos > 0.0, "{}", plan.access_nanos);
    plan.to_config(1).expect("every returned plan materializes as a runnable config");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn feasible_plans_honour_the_request(
        pps_m in 0.1f64..40.0,
        eps_pm in 35u32..300,
        flows in 1_000u64..200_000,
        heaviest in 1_000u64..1_000_000,
    ) {
        let profile = MachineProfile::paper();
        let req = TuneRequest::accuracy(pps_m * 1e6, f64::from(eps_pm) / 1000.0, 0.05);
        let sizes = zipf_sizes(flows, heaviest);
        if let Some(plan) = solve(&profile, &req, &sizes) {
            assert_plan_well_formed(&plan, &req);
        }
    }

    #[test]
    fn loosening_epsilon_preserves_feasibility(
        pps_m in 0.1f64..40.0,
        eps_pm in 35u32..200,
        slack_pm in 1u32..300,
        flows in 1_000u64..200_000,
    ) {
        let profile = MachineProfile::paper();
        let sizes = zipf_sizes(flows, 1_000_000);
        let tight = TuneRequest::accuracy(pps_m * 1e6, f64::from(eps_pm) / 1000.0, 0.05);
        let loose =
            TuneRequest::accuracy(pps_m * 1e6, f64::from(eps_pm + slack_pm) / 1000.0, 0.05);
        if solve(&profile, &tight, &sizes).is_some() {
            prop_assert!(
                solve(&profile, &loose, &sizes).is_some(),
                "feasible at epsilon {} but infeasible at the looser {}",
                f64::from(eps_pm) / 1000.0,
                f64::from(eps_pm + slack_pm) / 1000.0
            );
        }
    }

    #[test]
    fn lowering_the_load_preserves_feasibility(
        pps_m in 0.5f64..60.0,
        shrink in 0.05f64..1.0,
        eps_pm in 35u32..300,
        flows in 1_000u64..200_000,
    ) {
        let profile = MachineProfile::paper();
        let sizes = zipf_sizes(flows, 1_000_000);
        let heavy = TuneRequest::accuracy(pps_m * 1e6, f64::from(eps_pm) / 1000.0, 0.05);
        let light = TuneRequest::accuracy(pps_m * 1e6 * shrink, f64::from(eps_pm) / 1000.0, 0.05);
        if solve(&profile, &heavy, &sizes).is_some() {
            prop_assert!(
                solve(&profile, &light, &sizes).is_some(),
                "feasible at {pps_m} Mpps but infeasible at {} Mpps",
                pps_m * shrink
            );
        }
    }

    #[test]
    fn a_slower_memory_never_rescues_an_infeasible_problem(
        pps_m in 0.5f64..80.0,
        eps_pm in 35u32..300,
        factor in 1.0f64..6.0,
        flows in 1_000u64..200_000,
    ) {
        let fast = MachineProfile::paper();
        let slow = scaled_profile(factor);
        let req = TuneRequest::accuracy(pps_m * 1e6, f64::from(eps_pm) / 1000.0, 0.05);
        let sizes = zipf_sizes(flows, 1_000_000);
        if solve(&fast, &req, &sizes).is_none() {
            prop_assert!(
                solve(&slow, &req, &sizes).is_none(),
                "infeasible on the paper machine but solvable on one {factor}x slower"
            );
        }
    }

    #[test]
    fn throughput_requests_solve_whenever_accuracy_ones_do(
        pps_m in 0.1f64..40.0,
        eps_pm in 35u32..300,
        flows in 1_000u64..200_000,
    ) {
        let profile = MachineProfile::paper();
        let sizes = zipf_sizes(flows, 1_000_000);
        let acc = TuneRequest::accuracy(pps_m * 1e6, f64::from(eps_pm) / 1000.0, 0.05);
        let thr = TuneRequest::throughput(pps_m * 1e6, acc.min_margin);
        if let Some(plan) = solve(&profile, &acc, &sizes) {
            let relaxed = solve(&profile, &thr, &sizes);
            prop_assert!(
                relaxed.is_some(),
                "dropping the accuracy target lost feasibility at {pps_m} Mpps"
            );
            assert_plan_well_formed(&relaxed.unwrap(), &thr);
            assert_plan_well_formed(&plan, &acc);
        }
    }

    #[test]
    fn plan_files_roundtrip_for_any_solved_plan(
        pps_m in 0.1f64..40.0,
        eps_pm in 35u32..300,
        flows in 1_000u64..200_000,
    ) {
        let profile = MachineProfile::paper();
        let req = TuneRequest::accuracy(pps_m * 1e6, f64::from(eps_pm) / 1000.0, 0.05);
        if let Some(plan) = solve(&profile, &req, &zipf_sizes(flows, 1_000_000)) {
            let back = TunePlan::from_text(&plan.to_text()).expect("plan text parses back");
            prop_assert!(back.same_geometry(&plan));
            prop_assert!((back.predicted_epsilon - plan.predicted_epsilon).abs() < 1e-12);
        }
    }
}

/// The pinned golden solve: the paper machine, the documented default
/// request (1 Mpps, epsilon 0.05, delta 0.05) and the default synthetic
/// workload. If the solver's model changes, this diff is the reviewable
/// evidence.
#[test]
fn golden_profile_solves_to_the_pinned_geometry() {
    let profile = MachineProfile::paper();
    let req = TuneRequest::accuracy(1.0e6, 0.05, 0.05);
    let plan = solve(&profile, &req, &zipf_sizes(100_000, 1_000_000))
        .expect("the documented default request is feasible on the paper machine");
    assert_eq!(
        (plan.l1_memory_bytes, plan.vector_bits, plan.layers, plan.wsaf_entries_log2),
        (GOLDEN.0, GOLDEN.1, GOLDEN.2, GOLDEN.3),
        "golden geometry moved: {plan}"
    );
    assert!(plan.predicted_epsilon <= 0.05, "{plan}");
    assert!(plan.margin >= 2.0, "{plan}");
}

/// `(l1_memory_bytes, vector_bits, layers, wsaf_entries_log2)` of the
/// golden solve above.
const GOLDEN: (u64, u32, u32, u32) = (32_768, 16, 1, 19);
