//! The serializable machine profile the calibrator produces.
//!
//! A [`MachineProfile`] is a piecewise latency curve over working-set
//! sizes — the measured shape of this host's cache hierarchy — plus the
//! hash throughput and sequential stride cost the hot path cares about.
//! The solver interpolates the curve at the WSAF's resident size to get
//! the effective random-access latency its feasibility margins run on.
//!
//! The on-disk format is a deliberately boring line-oriented text file
//! (`key value` pairs plus one `point <bytes> <ns>` line per ladder rung)
//! so operators can read, diff and hand-edit cached profiles; the
//! workspace's serde shim is not involved.

use std::io;
use std::path::{Path, PathBuf};

/// One rung of the latency ladder: the measured random-access latency at
/// a working-set size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Working-set size in bytes.
    pub bytes: u64,
    /// Measured dependent-load latency in nanoseconds.
    pub nanos: f64,
}

/// A calibrated description of this host's memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    points: Vec<LatencyPoint>,
    hash_ns: f64,
    seq_ns: f64,
    calibration_nanos: u64,
    smoke: bool,
}

/// Errors loading or parsing a profile.
#[derive(Debug)]
pub enum ProfileError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The contents were not a valid profile.
    Parse(String),
}

impl core::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "profile io: {e}"),
            ProfileError::Parse(msg) => write!(f, "profile parse: {msg}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<io::Error> for ProfileError {
    fn from(e: io::Error) -> Self {
        ProfileError::Io(e)
    }
}

/// First line of the on-disk format; bump the suffix on layout changes.
const HEADER: &str = "instameasure-machine-profile v1";

impl MachineProfile {
    /// Builds a profile from measured parts. Points must be non-empty,
    /// strictly ascending in bytes, and positive in both coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Parse`] when the points are empty, out of
    /// order, or non-positive, or when `hash_ns`/`seq_ns` are not finite
    /// and positive.
    pub fn from_parts(
        points: Vec<LatencyPoint>,
        hash_ns: f64,
        seq_ns: f64,
        calibration_nanos: u64,
        smoke: bool,
    ) -> Result<Self, ProfileError> {
        if points.is_empty() {
            return Err(ProfileError::Parse("profile needs at least one latency point".into()));
        }
        for w in points.windows(2) {
            if w[1].bytes <= w[0].bytes {
                return Err(ProfileError::Parse(format!(
                    "latency points must be strictly ascending in bytes ({} then {})",
                    w[0].bytes, w[1].bytes
                )));
            }
        }
        for p in &points {
            if p.bytes == 0 || !p.nanos.is_finite() || p.nanos <= 0.0 {
                return Err(ProfileError::Parse(format!(
                    "latency point ({} B, {} ns) out of range",
                    p.bytes, p.nanos
                )));
            }
        }
        if !hash_ns.is_finite() || hash_ns <= 0.0 || !seq_ns.is_finite() || seq_ns <= 0.0 {
            return Err(ProfileError::Parse(format!(
                "hash_ns {hash_ns} / seq_ns {seq_ns} must be positive"
            )));
        }
        Ok(MachineProfile { points, hash_ns, seq_ns, calibration_nanos, smoke })
    }

    /// The deterministic golden fixture: the paper's constants arranged as
    /// a plausible 2019 server hierarchy (5 ns L1-resident through the
    /// paper's 80 ns DRAM plateau, `hash_ns` from the NetMon planner
    /// exemplar). Solver tests and the documented defaults run on this —
    /// no calibrator involved.
    #[must_use]
    pub fn paper() -> Self {
        MachineProfile {
            points: vec![
                LatencyPoint { bytes: 32 * 1024, nanos: 5.0 },
                LatencyPoint { bytes: 256 * 1024, nanos: 8.0 },
                LatencyPoint { bytes: 8 * 1024 * 1024, nanos: 20.0 },
                LatencyPoint { bytes: 32 * 1024 * 1024, nanos: 40.0 },
                LatencyPoint { bytes: 1024 * 1024 * 1024, nanos: 80.0 },
            ],
            hash_ns: 3.5,
            seq_ns: 0.5,
            calibration_nanos: 0,
            smoke: false,
        }
    }

    /// The latency ladder, ascending in working-set bytes.
    #[must_use]
    pub fn points(&self) -> &[LatencyPoint] {
        &self.points
    }

    /// Nanoseconds per [`instameasure_packet::FlowDigest`] computation.
    #[must_use]
    pub fn hash_ns(&self) -> f64 {
        self.hash_ns
    }

    /// Nanoseconds per element of a sequential sweep (the prefetcher-
    /// friendly cost the batched hot path approaches).
    #[must_use]
    pub fn seq_ns(&self) -> f64 {
        self.seq_ns
    }

    /// How long the calibration run took, in nanoseconds (0 for
    /// synthetic fixtures).
    #[must_use]
    pub fn calibration_nanos(&self) -> u64 {
        self.calibration_nanos
    }

    /// Whether this profile came from the bounded smoke sweep
    /// (`INSTAMEASURE_TUNE_SMOKE`) rather than the full ladder.
    #[must_use]
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// Effective random-access latency at a working-set size, log-linear
    /// interpolated between ladder rungs and clamped flat outside them.
    #[must_use]
    pub fn latency_ns(&self, working_set_bytes: u64) -> f64 {
        let pts = &self.points;
        if working_set_bytes <= pts[0].bytes {
            return pts[0].nanos;
        }
        if working_set_bytes >= pts[pts.len() - 1].bytes {
            return pts[pts.len() - 1].nanos;
        }
        for w in pts.windows(2) {
            if working_set_bytes <= w[1].bytes {
                let x0 = (w[0].bytes as f64).ln();
                let x1 = (w[1].bytes as f64).ln();
                let x = (working_set_bytes as f64).ln();
                let t = (x - x0) / (x1 - x0);
                return w[0].nanos + t * (w[1].nanos - w[0].nanos);
            }
        }
        pts[pts.len() - 1].nanos
    }

    /// The DRAM plateau: latency at the largest measured working set.
    #[must_use]
    pub fn dram_ns(&self) -> f64 {
        self.points[self.points.len() - 1].nanos
    }

    /// The cache-resident floor: latency at the smallest measured working
    /// set (what an on-chip SRAM structure would see).
    #[must_use]
    pub fn sram_ns(&self) -> f64 {
        self.points[0].nanos
    }

    /// Serializes to the line-oriented on-disk text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("hash_ns {}\n", self.hash_ns));
        out.push_str(&format!("seq_ns {}\n", self.seq_ns));
        out.push_str(&format!("calibration_nanos {}\n", self.calibration_nanos));
        out.push_str(&format!("smoke {}\n", u8::from(self.smoke)));
        for p in &self.points {
            out.push_str(&format!("point {} {}\n", p.bytes, p.nanos));
        }
        out
    }

    /// Parses the on-disk text format.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Parse`] on a bad header, malformed line,
    /// or values [`MachineProfile::from_parts`] rejects.
    pub fn from_text(text: &str) -> Result<Self, ProfileError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == HEADER => {}
            other => {
                return Err(ProfileError::Parse(format!(
                    "bad header {:?} (expected {HEADER:?})",
                    other.unwrap_or("")
                )))
            }
        }
        let mut points = Vec::new();
        let (mut hash_ns, mut seq_ns) = (None, None);
        let mut calibration_nanos = 0u64;
        let mut smoke = false;
        for (idx, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().unwrap_or("");
            let bad =
                |what: &str| ProfileError::Parse(format!("line {}: bad {what}: {line:?}", idx + 2));
            match key {
                "hash_ns" => {
                    hash_ns =
                        Some(it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("hash_ns"))?)
                }
                "seq_ns" => {
                    seq_ns =
                        Some(it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("seq_ns"))?)
                }
                "calibration_nanos" => {
                    calibration_nanos = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("calibration_nanos"))?
                }
                "smoke" => {
                    smoke =
                        it.next().and_then(|v| v.parse::<u8>().ok()).ok_or_else(|| bad("smoke"))?
                            != 0
                }
                "point" => {
                    let bytes =
                        it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("point"))?;
                    let nanos =
                        it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("point"))?;
                    points.push(LatencyPoint { bytes, nanos });
                }
                // Unknown keys are tolerated so newer writers stay readable.
                _ => {}
            }
        }
        let hash_ns = hash_ns.ok_or_else(|| ProfileError::Parse("missing hash_ns".into()))?;
        let seq_ns = seq_ns.ok_or_else(|| ProfileError::Parse("missing seq_ns".into()))?;
        MachineProfile::from_parts(points, hash_ns, seq_ns, calibration_nanos, smoke)
    }

    /// Writes the profile to a file.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), ProfileError> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }

    /// Loads a profile from a file.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Io`] when the file cannot be read and
    /// [`ProfileError::Parse`] when its contents are not a profile.
    pub fn load(path: &Path) -> Result<Self, ProfileError> {
        let text = std::fs::read_to_string(path)?;
        MachineProfile::from_text(&text)
    }

    /// Where the calibrator caches this host's profile: the
    /// [`crate::PROFILE_PATH_ENV`] override when set, else
    /// `instameasure-profile-v1.txt` in the system temp directory.
    #[must_use]
    pub fn default_cache_path() -> PathBuf {
        match std::env::var_os(crate::PROFILE_PATH_ENV) {
            Some(p) => PathBuf::from(p),
            None => std::env::temp_dir().join("instameasure-profile-v1.txt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fixture_shape() {
        let p = MachineProfile::paper();
        assert_eq!(p.dram_ns(), 80.0);
        assert_eq!(p.sram_ns(), 5.0);
        assert!(p.hash_ns() > 0.0);
        assert!(!p.smoke());
        // The canonical ratio the paper's argument rests on.
        let ratio = p.dram_ns() / p.sram_ns();
        assert!((10.0..=20.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn interpolation_is_monotone_and_clamped() {
        let p = MachineProfile::paper();
        assert_eq!(p.latency_ns(1), 5.0, "below the ladder clamps to the floor");
        assert_eq!(p.latency_ns(u64::MAX), 80.0, "beyond the ladder clamps to the plateau");
        assert_eq!(p.latency_ns(32 * 1024), 5.0, "exact rung");
        let mut prev = 0.0;
        for shift in 10..=31u32 {
            let ns = p.latency_ns(1u64 << shift);
            assert!(ns >= prev, "latency curve must be monotone: {ns} after {prev}");
            prev = ns;
        }
        // A 69 MB WSAF lands between the 32 MB and 1 GB rungs.
        let mid = p.latency_ns(69 * 1024 * 1024);
        assert!((40.0..80.0).contains(&mid), "{mid}");
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let p = MachineProfile::from_parts(
            vec![
                LatencyPoint { bytes: 32 * 1024, nanos: 1.25 },
                LatencyPoint { bytes: 1 << 30, nanos: 93.7 },
            ],
            3.25,
            0.4375,
            123_456_789,
            true,
        )
        .unwrap();
        let back = MachineProfile::from_text(&p.to_text()).unwrap();
        assert_eq!(back, p);
        assert!(back.smoke());
        assert_eq!(back.calibration_nanos(), 123_456_789);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(MachineProfile::from_text(""), Err(ProfileError::Parse(_))));
        assert!(matches!(MachineProfile::from_text("not a profile"), Err(ProfileError::Parse(_))));
        let missing_hash = format!("{HEADER}\nseq_ns 1\npoint 1024 5");
        assert!(matches!(MachineProfile::from_text(&missing_hash), Err(ProfileError::Parse(_))));
        let bad_point = format!("{HEADER}\nhash_ns 1\nseq_ns 1\npoint banana 5");
        assert!(matches!(MachineProfile::from_text(&bad_point), Err(ProfileError::Parse(_))));
        let descending = format!("{HEADER}\nhash_ns 1\nseq_ns 1\npoint 2048 5\npoint 1024 9");
        assert!(matches!(MachineProfile::from_text(&descending), Err(ProfileError::Parse(_))));
    }

    #[test]
    fn parse_tolerates_comments_and_unknown_keys() {
        let text = format!(
            "{HEADER}\n# a comment\nfuture_key 42\nhash_ns 2\nseq_ns 0.5\npoint 1024 5\n\n"
        );
        let p = MachineProfile::from_text(&text).unwrap();
        assert_eq!(p.hash_ns(), 2.0);
        assert_eq!(p.points().len(), 1);
    }

    #[test]
    fn from_parts_validates() {
        assert!(MachineProfile::from_parts(vec![], 1.0, 1.0, 0, false).is_err());
        let pt = |b, n| LatencyPoint { bytes: b, nanos: n };
        assert!(MachineProfile::from_parts(vec![pt(1024, -1.0)], 1.0, 1.0, 0, false).is_err());
        assert!(MachineProfile::from_parts(vec![pt(1024, 5.0)], f64::NAN, 1.0, 0, false).is_err());
        assert!(MachineProfile::from_parts(vec![pt(1024, 5.0)], 1.0, 1.0, 0, false).is_ok());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("im-profile-test-{}.txt", std::process::id()));
        let p = MachineProfile::paper();
        p.save(&path).unwrap();
        let back = MachineProfile::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, p);
    }
}
