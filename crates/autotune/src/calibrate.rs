//! The startup microbenchmark suite behind [`MachineProfile`].
//!
//! Three measurements, in the spirit of the NetMon planner's device
//! profiling:
//!
//! * **Random-access ladder** — a pointer chase over a random Hamiltonian
//!   cycle (Sattolo's algorithm) at working-set sizes from 32 KB up to
//!   1 GB. Every load depends on the previous one, so the measured time
//!   per step is the *unoverlappable* latency at that working-set size;
//!   sweeping the size walks the curve over the L1/L2/L3/DRAM cliffs.
//! * **Hash throughput** — nanoseconds per
//!   [`instameasure_packet::FlowDigest`] over a rotating key set, the
//!   `hash_ns` the per-packet cost model needs.
//! * **Sequential stride** — nanoseconds per element of a linear sweep
//!   over the largest buffer, the prefetcher-friendly floor that the
//!   batched hot path approaches and the random ladder is compared
//!   against.
//!
//! The full ladder allocates up to 1 GB and takes tens of seconds; CI and
//! tests run [`CalibrationOptions::smoke`] (bounded to a few MB and far
//! fewer chase steps), selected automatically by
//! [`CalibrationOptions::from_env`] when `INSTAMEASURE_TUNE_SMOKE` is set.

use std::hint::black_box;
use std::time::Instant;

use instameasure_packet::{FlowDigest, FlowKey, Protocol};

use crate::profile::{LatencyPoint, MachineProfile};

/// Bounds for a calibration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationOptions {
    /// Largest working set the ladder reaches, in bytes.
    pub max_bytes: u64,
    /// Dependent loads timed per ladder rung.
    pub chase_steps: u64,
    /// Digest computations timed for `hash_ns`.
    pub hash_iters: u64,
    /// Timed repetitions per measurement; the minimum is kept (standard
    /// microbenchmark practice — interference only ever adds time).
    pub repeats: u32,
}

impl CalibrationOptions {
    /// The full ladder: 32 KB → 1 GB, enough steps to amortize timer
    /// overhead. Expect tens of seconds and a 1 GB transient allocation.
    #[must_use]
    pub fn full() -> Self {
        CalibrationOptions {
            max_bytes: 1 << 30,
            chase_steps: 2_000_000,
            hash_iters: 4_000_000,
            repeats: 3,
        }
    }

    /// The bounded smoke sweep for CI and tests: tops out at 8 MB with two
    /// orders of magnitude fewer steps. The resulting profile still has
    /// the right *shape* (cache floor below DRAM-ish plateau) but its
    /// plateau sits at the L3 boundary, so it is marked
    /// [`MachineProfile::smoke`] and never silently trusted as a full
    /// profile.
    #[must_use]
    pub fn smoke() -> Self {
        CalibrationOptions {
            max_bytes: 8 << 20,
            chase_steps: 100_000,
            hash_iters: 100_000,
            repeats: 1,
        }
    }

    /// [`CalibrationOptions::smoke`] when [`crate::TUNE_SMOKE_ENV`] is set
    /// to anything but `0`, else [`CalibrationOptions::full`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(crate::TUNE_SMOKE_ENV) {
            Ok(v) if v != "0" && !v.is_empty() => CalibrationOptions::smoke(),
            _ => CalibrationOptions::full(),
        }
    }
}

/// splitmix64 — the calibrator's only randomness source (no external RNG
/// dependency, deterministic cycle construction).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a random Hamiltonian cycle over `n` slots (Sattolo's algorithm):
/// following `next[i]` visits every slot exactly once before returning —
/// a pointer chase with no shortcuts for the prefetcher to learn.
fn sattolo_cycle(n: usize, seed: u64) -> Vec<u64> {
    let mut next: Vec<u64> = (0..n as u64).collect();
    let mut state = seed;
    let mut i = n - 1;
    while i > 0 {
        let j = (splitmix64(&mut state) % i as u64) as usize;
        next.swap(i, j);
        i -= 1;
    }
    next
}

/// Chases the cycle for `steps` dependent loads, returning the final
/// index (which the caller must black-box to keep the chase alive).
fn chase(cycle: &[u64], steps: u64) -> u64 {
    let mut idx = 0u64;
    for _ in 0..steps {
        idx = cycle[idx as usize];
    }
    idx
}

/// Times one ladder rung: ns per dependent random access at `bytes`.
fn measure_rung(bytes: u64, opts: &CalibrationOptions) -> f64 {
    let n = (bytes / 8).max(16) as usize;
    let cycle = sattolo_cycle(n, 0x1A7E_5EED ^ bytes);
    // Warm the buffer (and the page tables) with one full pass.
    black_box(chase(&cycle, n as u64));
    let mut best = f64::INFINITY;
    for _ in 0..opts.repeats.max(1) {
        let start = Instant::now();
        black_box(chase(&cycle, opts.chase_steps));
        let ns = start.elapsed().as_nanos() as f64 / opts.chase_steps as f64;
        best = best.min(ns);
    }
    best
}

/// Times `hash_ns`: nanoseconds per [`FlowDigest`] computation.
fn measure_hash_ns(opts: &CalibrationOptions) -> f64 {
    let keys: Vec<FlowKey> = (0..4096u32)
        .map(|i| {
            FlowKey::new(
                i.to_be_bytes(),
                i.wrapping_mul(2_654_435_761).to_be_bytes(),
                (i % 65_536) as u16,
                443,
                Protocol::Tcp,
            )
        })
        .collect();
    let mut best = f64::INFINITY;
    for _ in 0..opts.repeats.max(1) {
        let mut acc = 0u64;
        let start = Instant::now();
        for i in 0..opts.hash_iters {
            let key = &keys[(i as usize) & (keys.len() - 1)];
            acc ^= FlowDigest::of(key).raw();
        }
        let elapsed = start.elapsed();
        black_box(acc);
        best = best.min(elapsed.as_nanos() as f64 / opts.hash_iters as f64);
    }
    best
}

/// Times the sequential stride: ns per element of a linear summation
/// sweep over a buffer of `bytes`.
fn measure_seq_ns(bytes: u64, opts: &CalibrationOptions) -> f64 {
    let n = (bytes / 8).max(16) as usize;
    let buf: Vec<u64> = (0..n as u64).collect();
    let mut best = f64::INFINITY;
    for _ in 0..opts.repeats.max(1) {
        let start = Instant::now();
        let mut acc = 0u64;
        for &v in &buf {
            acc = acc.wrapping_add(v);
        }
        let elapsed = start.elapsed();
        black_box(acc);
        best = best.min(elapsed.as_nanos() as f64 / n as f64);
    }
    best
}

/// The working-set ladder: ×4 steps from 32 KB, with the configured
/// maximum always included as the final rung.
fn ladder(max_bytes: u64) -> Vec<u64> {
    let mut sizes = Vec::new();
    let mut b = 32 * 1024u64;
    while b <= max_bytes {
        sizes.push(b);
        b = b.saturating_mul(4);
    }
    if sizes.last() != Some(&max_bytes) && max_bytes >= 32 * 1024 {
        sizes.push(max_bytes);
    }
    sizes
}

/// Runs the microbenchmark suite and assembles the machine profile.
///
/// # Panics
///
/// Panics if `opts.max_bytes` is below the 32 KB ladder floor.
#[must_use]
pub fn calibrate(opts: &CalibrationOptions) -> MachineProfile {
    assert!(opts.max_bytes >= 32 * 1024, "ladder floor is 32 KB");
    let started = Instant::now();
    let points: Vec<LatencyPoint> = ladder(opts.max_bytes)
        .into_iter()
        .map(|bytes| LatencyPoint { bytes, nanos: measure_rung(bytes, opts) })
        .collect();
    let hash_ns = measure_hash_ns(opts);
    let seq_ns = measure_seq_ns(opts.max_bytes.min(32 << 20), opts);
    let smoke = opts.max_bytes < CalibrationOptions::full().max_bytes;
    let calibration_nanos = started.elapsed().as_nanos() as u64;
    MachineProfile::from_parts(points, hash_ns, seq_ns, calibration_nanos, smoke)
        .expect("measured rungs are ascending and positive")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sattolo_is_a_single_cycle() {
        for n in [16usize, 1024, 4097] {
            let cycle = sattolo_cycle(n, 7);
            let mut seen = vec![false; n];
            let mut idx = 0u64;
            for _ in 0..n {
                assert!(!seen[idx as usize], "revisited slot {idx} before the full cycle");
                seen[idx as usize] = true;
                idx = cycle[idx as usize];
            }
            assert_eq!(idx, 0, "cycle must close after n steps");
            assert!(seen.iter().all(|&s| s), "cycle must visit every slot");
        }
    }

    #[test]
    fn ladder_shape() {
        let l = ladder(1 << 30);
        assert_eq!(l[0], 32 * 1024);
        assert_eq!(*l.last().unwrap(), 1 << 30);
        assert!(l.windows(2).all(|w| w[1] > w[0]));
        let small = ladder(40 * 1024);
        assert_eq!(small, vec![32 * 1024, 40 * 1024]);
    }

    #[test]
    fn smoke_calibration_produces_a_sane_profile() {
        // A tiny bounded run (even below the smoke preset) must produce a
        // structurally valid profile quickly, on any machine.
        let opts = CalibrationOptions {
            max_bytes: 1 << 20,
            chase_steps: 20_000,
            hash_iters: 20_000,
            repeats: 1,
        };
        let p = calibrate(&opts);
        assert!(p.smoke(), "bounded runs must be marked smoke");
        assert!(p.points().len() >= 2);
        assert!(p.hash_ns() > 0.0 && p.hash_ns() < 1_000.0, "hash_ns {}", p.hash_ns());
        assert!(
            p.seq_ns() > 0.0 && p.seq_ns() < p.dram_ns(),
            "seq {} dram {}",
            p.seq_ns(),
            p.dram_ns()
        );
        assert!(p.calibration_nanos() > 0);
        // The cache floor cannot be slower than the largest working set by
        // more than measurement noise allows the other way around: require
        // the plateau to be at least as slow as half the floor (hierarchies
        // never speed up as the working set grows).
        assert!(p.dram_ns() >= p.sram_ns() * 0.5, "floor {} plateau {}", p.sram_ns(), p.dram_ns());
        // Round-trips through the text format.
        let back = MachineProfile::from_text(&p.to_text()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn from_env_selects_smoke() {
        // Avoid mutating the process env (tests run in parallel): exercise
        // the two presets directly.
        assert!(CalibrationOptions::smoke().max_bytes < CalibrationOptions::full().max_bytes);
        assert!(CalibrationOptions::smoke().chase_steps < CalibrationOptions::full().chase_steps);
    }
}
