//! Machine-profiled auto-tuning for the InstaMeasure pipeline.
//!
//! The paper's feasibility argument (§II, Fig. 7) is an arithmetic over
//! memory latencies: the regulator must throttle WSAF insertions below
//! what DRAM's random access can absorb. Everywhere else in the workspace
//! that arithmetic runs on *paper constants* (80 ns DRAM, 5 ns SRAM).
//! This crate closes the loop with three layers:
//!
//! * [`calibrate`] — a startup microbenchmark suite that measures **this
//!   host**: effective random-access latency across working-set sizes
//!   (a pointer chase from 32 KB up to 1 GB traces the L1/L2/L3/DRAM
//!   cliffs), [`instameasure_packet::FlowDigest`] hash throughput, and
//!   the sequential-vs-random stride gap.
//! * [`profile`] — the serializable [`MachineProfile`] the calibrator
//!   produces: a latency-vs-working-set curve plus `hash_ns`/`seq_ns`,
//!   cached to disk so the daemon does not re-chase pointers on every
//!   boot ([`MachineProfile::default_cache_path`]), with
//!   [`MachineProfile::paper`] as the deterministic golden fixture.
//! * [`solver`] — the profile-driven configuration search: given a
//!   [`TuneRequest`] (an operator-stated `(epsilon, delta)` accuracy
//!   target or a pps budget) and a workload flow-size sample, it walks
//!   vector bits × layer count × WSAF capacity with the exact saturation
//!   chain model and returns the cheapest [`TunePlan`] whose predicted
//!   regulation fits the *measured* memory at the requested margin.
//!
//! Set [`TUNE_SMOKE_ENV`] (`INSTAMEASURE_TUNE_SMOKE=1`) to bound the
//! calibrator to a CI-sized sweep; set [`PROFILE_PATH_ENV`]
//! (`INSTAMEASURE_PROFILE`) to relocate the on-disk profile cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod profile;
pub mod solver;

pub use calibrate::{calibrate, CalibrationOptions};
pub use profile::{LatencyPoint, MachineProfile, ProfileError};
pub use solver::{measured_epsilon, solve, zipf_sizes, TunePlan, TuneRequest, TuneTarget};

/// Environment variable that switches the calibrator to its fast bounded
/// smoke mode (any value other than `0` enables it).
pub const TUNE_SMOKE_ENV: &str = "INSTAMEASURE_TUNE_SMOKE";

/// Environment variable overriding the on-disk machine-profile cache path.
pub const PROFILE_PATH_ENV: &str = "INSTAMEASURE_PROFILE";
