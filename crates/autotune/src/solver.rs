//! The profile-driven configuration search.
//!
//! Extends `instameasure_core::planner` from its fixed-latency
//! `MarginAnalysis` into a machine-profiled solver: given a calibrated
//! [`MachineProfile`], an operator target (an `(epsilon, delta)` accuracy
//! statement or a raw pps budget) and a sample of the workload's flow
//! sizes, [`solve`] searches vector bits × layer count × WSAF capacity and
//! returns the cheapest [`TunePlan`] that fits.
//!
//! # The models
//!
//! **Regulation / probe chain** — the exact single-flow saturation Markov
//! chain (`instameasure_sketch::analysis`), evaluated through a per-level
//! lookup table with a linear steady-state extension so 400k-flow
//! workloads solve in milliseconds rather than re-running the `O(s·b)` DP
//! per candidate. Feasibility margins use the measured latency at the
//! WSAF's *resident size* (table + the regulator layers co-resident with
//! it), and the probe chain accesses of the configured layer count — the
//! same honest accounting `planner::plan_regulator` switched to.
//!
//! **Accuracy** — a conservative first-order error model, validated
//! end-to-end in the test suite: every release quantizes a flow's count
//! at the saturation-period granularity with up to `noise_max` packets of
//! interference, so the expected relative estimate error scales as
//! `0.5·√layers / period(b)`. Wider vectors lengthen the period (lower
//! error); each extra layer compounds the quantization. The `delta` half
//! of the target tightens the effective epsilon by a `ln(1/δ)` headroom
//! factor (Chernoff-style), so rarer allowed violations demand larger
//! configurations.
//!
//! **WSAF capacity** — sized from the workload's flow count at a load
//! factor that *shrinks with epsilon* (`min(0.7, 7ε)`), independent of
//! the front-end candidate. That separability is what makes the solver
//! monotone: a tighter epsilon can never yield a smaller WSAF, and a
//! lighter pps demand can never yield a costlier front end (both are
//! property-tested).

use instameasure_core::{InstaMeasure, InstaMeasureConfig, InstaMeasureConfigError};
use instameasure_memmodel::{MarginAnalysis, MemoryTechnology};
use instameasure_sketch::{FilterKind, SketchConfig};

use crate::profile::{MachineProfile, ProfileError};

/// What the operator asked the tuner to guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TuneTarget {
    /// Per-flow estimates within relative error `epsilon` except with
    /// probability `delta` (both in `(0, 1)`).
    Accuracy {
        /// Relative-error target.
        epsilon: f64,
        /// Allowed violation probability.
        delta: f64,
    },
    /// Feasibility only: absorb the stated packet rate at the requested
    /// margin, accuracy best-effort.
    Throughput,
}

/// A tuning request: the offered load, the required headroom and the
/// operator target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneRequest {
    /// Packets per second the deployment must sustain.
    pub pps: f64,
    /// Required capacity/demand margin (≥ 1).
    pub min_margin: f64,
    /// The operator-stated goal.
    pub target: TuneTarget,
}

impl TuneRequest {
    /// An accuracy-targeted request with the default 2× margin.
    #[must_use]
    pub fn accuracy(pps: f64, epsilon: f64, delta: f64) -> Self {
        TuneRequest { pps, min_margin: 2.0, target: TuneTarget::Accuracy { epsilon, delta } }
    }

    /// A throughput-budget request.
    #[must_use]
    pub fn throughput(pps: f64, min_margin: f64) -> Self {
        TuneRequest { pps, min_margin, target: TuneTarget::Throughput }
    }

    fn validate(&self) -> bool {
        let target_ok = match self.target {
            TuneTarget::Accuracy { epsilon, delta } => {
                (0.0..1.0).contains(&epsilon)
                    && epsilon > 0.0
                    && (0.0..1.0).contains(&delta)
                    && delta > 0.0
            }
            TuneTarget::Throughput => true,
        };
        self.pps.is_finite() && self.pps >= 0.0 && self.min_margin >= 1.0 && target_ok
    }
}

/// A solved deployment: the configuration plus every prediction it was
/// chosen on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunePlan {
    /// Layer-1 sketch memory in bytes (sized by the occupancy rule).
    pub l1_memory_bytes: u64,
    /// Per-layer virtual-vector size in bits.
    pub vector_bits: u32,
    /// Regulator depth (1 = plain RCC, 2 = the paper's FlowRegulator).
    pub layers: u32,
    /// log₂ of the WSAF slot count.
    pub wsaf_entries_log2: u32,
    /// Predicted WSAF insertion rate (ips/pps) from the chain model.
    pub predicted_regulation: f64,
    /// Expected slow-memory accesses per insertion (probe chain).
    pub probes_per_insert: f64,
    /// Capacity/demand margin at the measured latency.
    pub margin: f64,
    /// Predicted relative estimate error of the accuracy model.
    pub predicted_epsilon: f64,
    /// The measured random-access latency (ns) the margin ran on — the
    /// profile curve at the plan's resident working-set size.
    pub access_nanos: f64,
}

/// First line of the plan file format.
const PLAN_HEADER: &str = "instameasure-tune-plan v1";

impl TunePlan {
    /// The front-end filter this plan runs: plain RCC for a single layer,
    /// the paper's two-layer FlowRegulator otherwise (deeper cascades are
    /// a planning-model concept; the runtime pipeline caps at two).
    #[must_use]
    pub fn filter_kind(&self) -> FilterKind {
        if self.layers == 1 {
            FilterKind::Rcc
        } else {
            FilterKind::Regulator
        }
    }

    /// Total modeled memory of the plan in paper terms: the filter at its
    /// equal-memory budget plus 33-byte WSAF entries.
    #[must_use]
    pub fn paper_memory_bytes(&self) -> u64 {
        let noise_classes = SketchConfig::builder()
            .memory_bytes(self.l1_memory_bytes as usize)
            .vector_bits(self.vector_bits)
            .build()
            .map(|c| c.noise_classes() as u64)
            .unwrap_or(3);
        self.l1_memory_bytes * (1 + noise_classes) + (1u64 << self.wsaf_entries_log2) * 33
    }

    /// Materializes the plan as a runnable pipeline configuration.
    ///
    /// # Errors
    ///
    /// Returns the underlying config validation error if the plan's
    /// values are out of range (only possible for hand-edited plan
    /// files).
    pub fn to_config(&self, seed: u64) -> Result<InstaMeasureConfig, InstaMeasureConfigError> {
        Ok(InstaMeasureConfig::builder()
            .l1_memory_bytes(self.l1_memory_bytes as usize)
            .vector_bits(self.vector_bits)
            .wsaf_entries_log2(self.wsaf_entries_log2)
            .seed(seed)
            .build()?
            .with_filter(self.filter_kind()))
    }

    /// Whether two plans select the same configuration (ignoring the
    /// float predictions, which vary with the workload they were solved
    /// against) — the drift test the epoch re-tuner runs.
    #[must_use]
    pub fn same_geometry(&self, other: &TunePlan) -> bool {
        (self.l1_memory_bytes, self.vector_bits, self.layers, self.wsaf_entries_log2)
            == (other.l1_memory_bytes, other.vector_bits, other.layers, other.wsaf_entries_log2)
    }

    /// Serializes to the plan file format (`tune --apply` output).
    #[must_use]
    pub fn to_text(&self) -> String {
        format!(
            "{PLAN_HEADER}\n# filter {}\nl1_memory_bytes {}\nvector_bits {}\nlayers {}\n\
             wsaf_entries_log2 {}\npredicted_regulation {}\nprobes_per_insert {}\nmargin {}\n\
             predicted_epsilon {}\naccess_nanos {}\n",
            self.filter_kind(),
            self.l1_memory_bytes,
            self.vector_bits,
            self.layers,
            self.wsaf_entries_log2,
            self.predicted_regulation,
            self.probes_per_insert,
            self.margin,
            self.predicted_epsilon,
            self.access_nanos,
        )
    }

    /// Parses the plan file format.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Parse`] on a bad header or malformed line.
    pub fn from_text(text: &str) -> Result<Self, ProfileError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == PLAN_HEADER => {}
            other => {
                return Err(ProfileError::Parse(format!(
                    "bad plan header {:?} (expected {PLAN_HEADER:?})",
                    other.unwrap_or("")
                )))
            }
        }
        let mut plan = TunePlan {
            l1_memory_bytes: 0,
            vector_bits: 0,
            layers: 0,
            wsaf_entries_log2: 0,
            predicted_regulation: 0.0,
            probes_per_insert: 0.0,
            margin: 0.0,
            predicted_epsilon: 0.0,
            access_nanos: 0.0,
        };
        for (idx, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().unwrap_or("");
            let val = it.next();
            let bad = || ProfileError::Parse(format!("plan line {}: bad value: {line:?}", idx + 2));
            macro_rules! parse {
                () => {
                    val.and_then(|v| v.parse().ok()).ok_or_else(bad)?
                };
            }
            match key {
                "l1_memory_bytes" => plan.l1_memory_bytes = parse!(),
                "vector_bits" => plan.vector_bits = parse!(),
                "layers" => plan.layers = parse!(),
                "wsaf_entries_log2" => plan.wsaf_entries_log2 = parse!(),
                "predicted_regulation" => plan.predicted_regulation = parse!(),
                "probes_per_insert" => plan.probes_per_insert = parse!(),
                "margin" => plan.margin = parse!(),
                "predicted_epsilon" => plan.predicted_epsilon = parse!(),
                "access_nanos" => plan.access_nanos = parse!(),
                _ => {}
            }
        }
        if plan.l1_memory_bytes == 0 || plan.vector_bits == 0 || plan.layers == 0 {
            return Err(ProfileError::Parse("plan missing a geometry field".into()));
        }
        Ok(plan)
    }

    /// Writes the plan to a file (`tune --apply <path>`).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Io`] when the file cannot be written.
    pub fn save(&self, path: &std::path::Path) -> Result<(), ProfileError> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }

    /// Loads a plan file.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Io`] when the file cannot be read and
    /// [`ProfileError::Parse`] when its contents are not a plan.
    pub fn load(path: &std::path::Path) -> Result<Self, ProfileError> {
        let text = std::fs::read_to_string(path)?;
        TunePlan::from_text(&text)
    }
}

impl core::fmt::Display for TunePlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "plan: {} front end, {} KB L1, b={}, {} layer(s), 2^{} WSAF entries",
            self.filter_kind(),
            self.l1_memory_bytes / 1024,
            self.vector_bits,
            self.layers,
            self.wsaf_entries_log2
        )?;
        writeln!(
            f,
            "  predicted regulation {:.4}% ({:.1} probes/insert), margin {:.1}x at {:.1} ns",
            self.predicted_regulation * 100.0,
            self.probes_per_insert,
            self.margin,
            self.access_nanos
        )?;
        write!(
            f,
            "  predicted epsilon {:.4}, modeled memory {:.1} MB",
            self.predicted_epsilon,
            self.paper_memory_bytes() as f64 / (1024.0 * 1024.0)
        )
    }
}

/// A Zipf-ish synthetic flow-size sample: `flows` flows where flow `i`
/// carries `max(heaviest/i, 1)` packets — the default workload shape the
/// CLI and benches tune against when no trace is supplied.
#[must_use]
pub fn zipf_sizes(flows: u64, heaviest: u64) -> Vec<u64> {
    (1..=flows.max(1)).map(|i| (heaviest / i).max(1)).collect()
}

/// The fast per-vector-size chain model: a cumulative expected-saturation
/// table for `s = 0..=TABLE_MAX` plus the steady-state rate for linear
/// extension beyond it.
struct ChainModel {
    table: Vec<f64>,
    steady_rate: f64,
}

const TABLE_MAX: usize = 1024;

impl ChainModel {
    /// Builds the table with the same recurrence as
    /// `analysis::SaturationChain` (state = own set bits, saturation at
    /// `b - noise_max` resets to zero); validated against the exact DP in
    /// the tests below.
    fn new(b: u32, noise_max: u32) -> Self {
        let threshold = (b - noise_max) as usize;
        let bf = f64::from(b);
        let mut probs = vec![0.0f64; threshold];
        probs[0] = 1.0;
        let mut next = vec![0.0f64; threshold];
        let mut cumulative = 0.0;
        let mut table = Vec::with_capacity(TABLE_MAX + 1);
        table.push(0.0);
        for _ in 1..=TABLE_MAX {
            next.fill(0.0);
            let mut newly = 0.0;
            for (k, &p) in probs.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                let hit_zero = (b as usize - k) as f64 / bf;
                next[k] += p * (1.0 - hit_zero);
                if k + 1 == threshold {
                    newly += p * hit_zero;
                } else {
                    next[k + 1] += p * hit_zero;
                }
            }
            next[0] += newly;
            cumulative += newly;
            table.push(cumulative);
            std::mem::swap(&mut probs, &mut next);
        }
        let steady_rate = table[TABLE_MAX] - table[TABLE_MAX - 1];
        ChainModel { table, steady_rate }
    }

    /// Expected saturations of a (possibly fractional, from layer
    /// composition) input count `x`.
    fn saturations(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let max = TABLE_MAX as f64;
        if x >= max {
            return self.table[TABLE_MAX] + (x - max) * self.steady_rate;
        }
        let lo = x.floor() as usize;
        let frac = x - lo as f64;
        let hi = (lo + 1).min(TABLE_MAX);
        self.table[lo] + frac * (self.table[hi] - self.table[lo])
    }

    /// Expected releases of a size-`s` flow out of layer `layers`.
    fn updates(&self, s: u64, layers: u32) -> f64 {
        let mut count = self.saturations(s as f64);
        for _ in 1..layers {
            count = self.saturations(count);
        }
        count
    }

    /// Steady-state packets per saturation.
    fn period(&self) -> f64 {
        if self.steady_rate > 0.0 {
            1.0 / self.steady_rate
        } else {
            f64::INFINITY
        }
    }
}

/// Groups a workload into (size, count) pairs, quantizing large sizes to
/// three significant bits so Zipf-shaped 400k-flow samples stay a few
/// hundred distinct entries.
fn group_sizes(sizes: &[u64]) -> Vec<(u64, u64)> {
    let mut by_size = std::collections::HashMap::new();
    for &s in sizes {
        let q = if s <= 256 {
            s
        } else {
            // Round to the nearest 3-significant-bit value (floor would
            // bias the modeled saturation rate low by several percent).
            let shift = 63 - s.leading_zeros() as u64 - 2;
            ((s >> (shift - 1)).div_ceil(2)) << shift
        };
        *by_size.entry(q).or_insert(0u64) += 1;
    }
    let mut grouped: Vec<(u64, u64)> = by_size.into_iter().collect();
    grouped.sort_unstable();
    grouped
}

/// The layer-1 occupancy rule: enough L1 bits that at most ~8 concurrent
/// flows share a vector's worth of bits, floored at the paper's 32 KB and
/// capped at 1 MB. Monotone in both the flow count and the vector size.
fn l1_bytes_for(flows: u64, vector_bits: u32) -> u64 {
    let bits_needed = flows.saturating_mul(u64::from(vector_bits)) / 8;
    let bytes = (bits_needed / 8).max(32 * 1024);
    bytes.next_power_of_two().min(1 << 20)
}

/// The WSAF sizing rule: hold the workload's flow count at a load factor
/// of `min(0.7, 7ε)` (0.7 for throughput-only targets), clamped to
/// `2^14..=2^26` slots. Tighter epsilon → lower load → never a smaller
/// table.
fn wsaf_log2_for(flows: u64, target: &TuneTarget) -> Option<u32> {
    let load_cap = match *target {
        TuneTarget::Accuracy { epsilon, .. } => (7.0 * epsilon).min(0.7),
        TuneTarget::Throughput => 0.7,
    };
    let required = (flows.max(1) as f64 / load_cap).ceil() as u64;
    let log2 = 64 - required.next_power_of_two().leading_zeros() - 1;
    if log2 > 26 {
        return None;
    }
    Some(log2.max(14))
}

/// The Chernoff-style delta headroom: the effective epsilon the model
/// must beat, shrinking as the allowed violation probability does.
fn effective_epsilon(epsilon: f64, delta: f64) -> f64 {
    epsilon / (1.0 + (1.0 / delta).ln() / 10.0)
}

/// Searches for the cheapest configuration meeting the request on the
/// measured machine, `None` when nothing in the space fits (or the
/// request itself is malformed). Candidates are ordered fewest-layers
///-then-smallest-vectors; the first feasible one wins, which (with the
/// separable WSAF rule) gives the monotonicity guarantees the property
/// tests pin.
#[must_use]
pub fn solve(
    profile: &MachineProfile,
    req: &TuneRequest,
    workload_sizes: &[u64],
) -> Option<TunePlan> {
    if !req.validate() {
        return None;
    }
    let flows = workload_sizes.len() as u64;
    let total_packets: u64 = workload_sizes.iter().sum();
    let grouped = group_sizes(workload_sizes);
    let wsaf_log2 = wsaf_log2_for(flows, &req.target)?;
    let wsaf_bytes = (1u64 << wsaf_log2) * 33;

    let eps_budget = match req.target {
        TuneTarget::Accuracy { epsilon, delta } => Some(effective_epsilon(epsilon, delta)),
        TuneTarget::Throughput => None,
    };

    for layers in 1..=4u32 {
        for vector_bits in [4u32, 8, 16, 32] {
            let l1_memory_bytes = l1_bytes_for(flows, vector_bits);
            let cfg = SketchConfig::builder()
                .memory_bytes(l1_memory_bytes as usize)
                .vector_bits(vector_bits)
                .build()
                .expect("search space configs are valid");
            let model = ChainModel::new(vector_bits, cfg.noise_max());

            let predicted_epsilon = 0.5 * f64::from(layers).sqrt() / model.period();
            if let Some(budget) = eps_budget {
                if predicted_epsilon > budget {
                    continue;
                }
            }

            // Per-layer release rates over the workload.
            let rate_at = |l: u32| -> f64 {
                if total_packets == 0 {
                    return 0.0;
                }
                let updates: f64 =
                    grouped.iter().map(|&(s, n)| n as f64 * model.updates(s, l)).sum();
                updates / total_packets as f64
            };
            let rate = rate_at(layers);
            let l1_rate = if layers == 1 { rate } else { rate_at(1) };
            // Mirror the planner: a deep cascade that truncates real
            // traffic to zero insertions is a model artifact, not a plan.
            if rate <= 0.0 && l1_rate > 0.0 {
                continue;
            }
            let probes_per_insert = if rate > 0.0 {
                let feed: f64 = (1..layers).map(rate_at).sum();
                (feed + 2.0 * rate) / rate
            } else {
                2.0
            };

            // The slow-memory working set: the WSAF plus the regulator
            // layers co-resident with it (everything beyond layer 1).
            let noise_classes = cfg.noise_classes() as u64;
            let deep_bytes = l1_memory_bytes * noise_classes * u64::from(layers - 1);
            let access_nanos = profile.latency_ns(wsaf_bytes + deep_bytes);

            let margin = MarginAnalysis::new(req.pps, rate.min(1.0), MemoryTechnology::Dram)
                .with_probes_per_insert(probes_per_insert.max(1.0))
                .with_access_nanos(access_nanos)
                .margin();
            if margin >= req.min_margin {
                return Some(TunePlan {
                    l1_memory_bytes,
                    vector_bits,
                    layers,
                    wsaf_entries_log2: wsaf_log2,
                    predicted_regulation: rate,
                    probes_per_insert,
                    margin,
                    predicted_epsilon,
                    access_nanos,
                });
            }
        }
    }
    None
}

/// Measures a plan's delivered relative error on a labeled workload: runs
/// the plan's pipeline over synthetic packets of the given flow sizes and
/// returns the packet-weighted mean relative error over flows of at least
/// `min_size` packets (the flows an epsilon target is about — sub-period
/// mice are measured exactly by the residual).
///
/// This is the oracle the e2e tests and the tune bench compare
/// [`TunePlan::predicted_epsilon`] against.
#[must_use]
pub fn measured_epsilon(plan: &TunePlan, sizes: &[u64], min_size: u64, seed: u64) -> f64 {
    use instameasure_packet::{FlowKey, PacketRecord, Protocol};
    let cfg = match plan.to_config(seed) {
        Ok(c) => c,
        Err(_) => return f64::INFINITY,
    };
    let mut im = InstaMeasure::new(cfg);
    // Interleave flows round-robin so concurrent sketch occupancy is
    // realistic rather than one-flow-at-a-time best case.
    let keys: Vec<FlowKey> = (0..sizes.len() as u32)
        .map(|i| {
            FlowKey::new(
                i.to_be_bytes(),
                i.wrapping_mul(2_654_435_761).to_be_bytes(),
                (i % 65_536) as u16,
                443,
                Protocol::Udp,
            )
        })
        .collect();
    let mut remaining: Vec<u64> = sizes.to_vec();
    let mut ts = 0u64;
    let mut active = true;
    while active {
        active = false;
        for (i, rem) in remaining.iter_mut().enumerate() {
            if *rem == 0 {
                continue;
            }
            *rem -= 1;
            active = true;
            im.process(&PacketRecord::new(keys[i], 200, ts));
            ts += 20;
        }
    }
    let mut err_weighted = 0.0;
    let mut weight = 0.0;
    for (i, &truth) in sizes.iter().enumerate() {
        if truth < min_size {
            continue;
        }
        let est = im.estimate_packets(&keys[i]);
        let w = truth as f64;
        err_weighted += w * (est - w).abs() / w;
        weight += w;
    }
    if weight > 0.0 {
        err_weighted / weight
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_sketch::analysis;

    fn paper() -> MachineProfile {
        MachineProfile::paper()
    }

    fn workload() -> Vec<u64> {
        zipf_sizes(20_000, 100_000)
    }

    #[test]
    fn chain_model_matches_the_exact_dp() {
        for b in [4u32, 8, 16, 32] {
            let cfg =
                SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(b).build().unwrap();
            let model = ChainModel::new(b, cfg.noise_max());
            let chain = analysis::SaturationChain::new(&cfg);
            for s in [1u64, 7, 50, 500, 1000] {
                let fast = model.saturations(s as f64);
                let exact = chain.expected_saturations(s);
                assert!(
                    (fast - exact).abs() <= 1e-9 + 1e-9 * exact,
                    "b={b} s={s}: fast {fast} vs exact {exact}"
                );
            }
            // The linear extension tracks the DP within a percent at 4x
            // the table horizon.
            let fast = model.saturations(4096.0);
            let exact = chain.expected_saturations(4096);
            assert!((fast - exact).abs() / exact < 0.01, "b={b}: {fast} vs {exact}");
        }
    }

    #[test]
    fn fast_regulation_matches_analysis_model() {
        let sizes = zipf_sizes(2_000, 20_000);
        let cfg = SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).build().unwrap();
        let model = ChainModel::new(8, cfg.noise_max());
        let total: u64 = sizes.iter().sum();
        for layers in 1..=3u32 {
            let grouped = group_sizes(&sizes);
            let fast: f64 =
                grouped.iter().map(|&(s, n)| n as f64 * model.updates(s, layers)).sum::<f64>()
                    / total as f64;
            let exact = analysis::expected_regulation_rate(&cfg, &sizes, layers);
            let rel = (fast - exact).abs() / exact.max(1e-12);
            assert!(rel < 0.05, "layers={layers}: fast {fast} vs exact {exact} (rel {rel})");
        }
    }

    #[test]
    fn accuracy_target_solves_and_predictions_are_consistent() {
        let req = TuneRequest::accuracy(1.0e6, 0.1, 0.05);
        let plan = solve(&paper(), &req, &workload()).unwrap();
        assert!(plan.margin >= req.min_margin, "{plan}");
        assert!(plan.predicted_epsilon <= 0.1, "{plan}");
        assert!(plan.predicted_regulation > 0.0 && plan.predicted_regulation < 1.0);
        assert!(plan.probes_per_insert >= 2.0);
        // The WSAF must hold 20k flows comfortably.
        assert!(u64::from(plan.wsaf_entries_log2) >= 14);
        // The margin ran at the profile curve evaluated at the plan's
        // working set — somewhere strictly inside the curve's range (a
        // ~1 MB WSAF lands between the 256 KB and 8 MB rungs).
        assert!(plan.access_nanos > paper().sram_ns(), "{plan}");
        assert!(plan.access_nanos <= paper().dram_ns(), "{plan}");
    }

    #[test]
    fn tighter_epsilon_buys_wider_vectors() {
        let sizes = workload();
        let loose = solve(&paper(), &TuneRequest::accuracy(1.0e6, 0.2, 0.05), &sizes).unwrap();
        let tight = solve(&paper(), &TuneRequest::accuracy(1.0e6, 0.03, 0.05), &sizes).unwrap();
        assert!(tight.vector_bits > loose.vector_bits, "loose {loose} tight {tight}");
        assert!(tight.predicted_epsilon < loose.predicted_epsilon);
        assert!(tight.wsaf_entries_log2 >= loose.wsaf_entries_log2);
    }

    #[test]
    fn throughput_pressure_buys_layers() {
        // Campus rate over a Zipf mix: a single layer suffices.
        let calm = solve(&paper(), &TuneRequest::throughput(150e3, 2.0), &workload()).unwrap();
        assert_eq!(calm.layers, 1, "{calm}");
        // An all-elephant workload at a brutal packet rate: every flow
        // saturates at the steady period, so a single layer (even b=32)
        // feeds the WSAF too fast — only cascading, which squares the
        // release period away, fits. (Mice-heavy mixes self-regulate and
        // legitimately solve single-layer even at 100 GbE.)
        let elephants = vec![10_000u64; 50_000];
        let stress = solve(&paper(), &TuneRequest::throughput(600e6, 2.0), &elephants).unwrap();
        assert!(stress.layers >= 2, "{stress}");
        assert!(stress.predicted_regulation < calm.predicted_regulation);
    }

    #[test]
    fn impossible_targets_return_none() {
        let sizes = workload();
        // An epsilon no vector in the space can promise.
        assert!(solve(&paper(), &TuneRequest::accuracy(1.0e6, 0.001, 0.05), &sizes).is_none());
        // A margin no config reaches at an absurd rate.
        assert!(solve(&paper(), &TuneRequest::throughput(1e12, 100.0), &sizes).is_none());
        // Malformed requests never panic.
        assert!(solve(&paper(), &TuneRequest::accuracy(1.0e6, 0.0, 0.05), &sizes).is_none());
        assert!(solve(&paper(), &TuneRequest::accuracy(f64::NAN, 0.1, 0.05), &sizes).is_none());
    }

    #[test]
    fn slower_memory_never_cheapens_the_plan() {
        let sizes = workload();
        let req = TuneRequest::throughput(59.5e6, 2.0);
        let fast_host = solve(&paper(), &req, &sizes).unwrap();
        // A host measuring 3x the paper's DRAM latency everywhere.
        let slow_points = paper()
            .points()
            .iter()
            .map(|p| crate::LatencyPoint { bytes: p.bytes, nanos: p.nanos * 3.0 })
            .collect();
        let slow = MachineProfile::from_parts(slow_points, 3.5, 0.5, 0, false).unwrap();
        let slow_host = solve(&slow, &req, &sizes).unwrap();
        assert!(
            (slow_host.layers, slow_host.vector_bits) >= (fast_host.layers, fast_host.vector_bits),
            "slow {slow_host} vs fast {fast_host}"
        );
    }

    #[test]
    fn wsaf_rule_is_monotone_and_bounded() {
        let acc = |e| TuneTarget::Accuracy { epsilon: e, delta: 0.05 };
        let l1 = wsaf_log2_for(400_000, &acc(0.1)).unwrap();
        let l2 = wsaf_log2_for(400_000, &acc(0.05)).unwrap();
        let l3 = wsaf_log2_for(400_000, &acc(0.01)).unwrap();
        assert!(l1 <= l2 && l2 <= l3, "{l1} {l2} {l3}");
        assert_eq!(wsaf_log2_for(0, &TuneTarget::Throughput).unwrap(), 14);
        // A workload too large for the clamp refuses rather than lies.
        assert!(wsaf_log2_for(u64::MAX / 2, &TuneTarget::Throughput).is_none());
    }

    #[test]
    fn plan_text_roundtrip() {
        let req = TuneRequest::accuracy(1.0e6, 0.1, 0.05);
        let plan = solve(&paper(), &req, &workload()).unwrap();
        let back = TunePlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(back, plan);
        assert!(back.same_geometry(&plan));
        assert!(TunePlan::from_text("nope").is_err());
        assert!(TunePlan::from_text(PLAN_HEADER).is_err(), "geometry fields required");
    }

    #[test]
    fn plan_materializes_as_a_runnable_config() {
        let plan = solve(&paper(), &TuneRequest::accuracy(1.0e6, 0.1, 0.05), &workload()).unwrap();
        let cfg = plan.to_config(42).unwrap();
        assert_eq!(cfg.sketch.memory_bytes() as u64, plan.l1_memory_bytes);
        assert_eq!(cfg.sketch.vector_bits(), plan.vector_bits);
        assert_eq!(cfg.wsaf.entries_log2(), plan.wsaf_entries_log2);
        assert_eq!(cfg.filter, plan.filter_kind());
    }

    #[test]
    fn measured_epsilon_honours_the_prediction_on_a_small_trace() {
        // The e2e battery runs the big version; this keeps the oracle
        // itself honest at unit-test scale.
        let sizes = zipf_sizes(2_000, 20_000);
        let plan = solve(&paper(), &TuneRequest::accuracy(1.0e6, 0.15, 0.1), &sizes).unwrap();
        let eps = measured_epsilon(&plan, &sizes, 100, 7);
        assert!(eps < 0.15, "measured epsilon {eps} vs target 0.15 for {plan}");
    }
}
